"""Static SPMD correctness analysis ("spmdlint", "racecheck", "deep").

The runtime's invariants are enforced statically by this package, walking
Python sources with :mod:`ast` before any code runs:

* **schedule** — every rank of a world calls the same sequence of
  collectives with compatible arguments (:mod:`.spmdlint`, SPMD001–005;
  the dynamic companion is ``REPRO_VERIFY_COLLECTIVES=1``);
* **ownership** — payloads borrowed from copy=False collectives are never
  mutated or leaked to shared locations (:mod:`.racecheck`, SPMD006–008;
  the dynamic companion is ``REPRO_SANITIZE_BUFFERS=1``);
* **whole-program schedule** — the same schedule rules across call
  boundaries, via a module-level call graph and per-function summaries
  (:mod:`.deep`, SPMD009–011, behind ``repro check --deep``);
* **backend portability** — no closures, lambdas, or unpicklable values
  flow into ``run_spmd``/``AnalyticsEngine`` launches (:mod:`.picklecheck`,
  SPMD012; the dynamic companion is the launch-time
  ``find_unpicklable`` diagnostic in :mod:`repro.runtime.backends.base`);
* **distribution state** — id-carrying values stay in their index space
  (global/local/owner) and ghost-extended arrays are fresh when read,
  via flow-sensitive abstract interpretation (:mod:`.distcheck`,
  SPMD013–016 and the PERF001–003 performance rules; mechanical findings
  carry autofixes applied by ``repro check --fix``).

Rules (each suppressible with ``# spmdlint: disable=SPMDxxx``):

========  ==================================================================
SPMD001   collectives differ between the arms of a rank-dependent branch
SPMD002   conditional early exit (return/raise/continue/break) under a
          rank-dependent or rank-local condition skips later collectives
SPMD003   collective inside a loop whose trip count is not derived from a
          replicated value (allreduce/bcast result, argument, constant)
SPMD004   object-pickling collective on a hot path (inside a loop) where a
          buffer collective exists
SPMD005   reduction input built from unordered set iteration
          (non-deterministic ordering across ranks)
SPMD006   in-place mutation of a payload borrowed from a copy=False
          collective (the write aliases every rank)
SPMD007   buffer mutated after being published to a copy=False collective
          (peer ranks may still be reading it)
SPMD008   borrowed collective payload stored to a shared location
          (global/attribute/caller-visible container) without an owning copy
SPMD009   collective (transitively, via helper calls) reachable only under
          rank-dependent control flow [--deep]
SPMD010   rank-dependent value passed into a parameter the callee uses to
          gate or size a collective [--deep]
SPMD011   conflicting transitive collective sequences on two paths to the
          same join point [--deep]
SPMD012   closure/lambda/unpicklable value flows into an SPMD launch
          (fails at spawn on the procs/mpi backends)
SPMD013   index-space confusion: a local id flows into ``map.get`` or a
          global id indexes ``unmap``/a locally-allocated array
          (interprocedural via parameter expectations in --deep)
SPMD014   ghost slice of a ghost-extended array read after a local write
          with no intervening halo exchange (stale ghosts)
SPMD015   whole-array reduction over a ghost-extended array
          (ghost copies double-counted; reduce ``x[:n_loc]``)
SPMD016   collective reduction buffer whose shape differs across ranks at
          its construction site (rank-derived or n_loc-sized)
PERF001   loop-invariant collective inside an iteration loop
          (auto-hoisted by ``--fix``)
PERF002   object-list collective over ``np.split`` parts where
          ``alltoallv_flat`` sends the same bytes without pickling
          (flat-path substitution suggested via SARIF fixes)
PERF003   per-iteration ndarray allocation feeding an exchange/collective
          sink in a hot loop (``np.empty`` auto-hoisted by ``--fix``)
========  ==================================================================

Use :func:`lint_paths` / :func:`deep_lint_paths` programmatically, or the
CLI::

    python -m repro check src/repro --deep --strict --format sarif
"""

from .deep import (
    apply_baseline,
    baseline_key,
    deep_lint_paths,
    load_baseline,
    write_baseline,
)
from .distcheck import DIST_RULES, PERF_RULES
from .fixer import apply_fixes, fix_files, fixable
from .picklecheck import PORTABILITY_RULES
from .racecheck import OWNERSHIP_RULES
from .spmdlint import (
    DEEP_RULES,
    RULE_DOCS,
    RULE_FIXES,
    RULES,
    SCHEDULE_RULES,
    Finding,
    lint_file,
    lint_paths,
    lint_source,
    suppression_hint,
)

__all__ = ["Finding", "RULES", "SCHEDULE_RULES", "OWNERSHIP_RULES",
           "DEEP_RULES", "PORTABILITY_RULES", "DIST_RULES", "PERF_RULES",
           "RULE_DOCS", "RULE_FIXES", "lint_source", "lint_file",
           "lint_paths", "deep_lint_paths",
           "load_baseline", "write_baseline", "apply_baseline",
           "baseline_key", "suppression_hint",
           "apply_fixes", "fix_files", "fixable"]
