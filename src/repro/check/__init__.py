"""Static SPMD correctness analysis ("spmdlint").

The runtime's one load-bearing invariant — every rank of a world calls the
same sequence of collectives with compatible arguments — is enforced two
ways: dynamically by the schedule verifier in :mod:`repro.runtime.comm`
(``REPRO_VERIFY_COLLECTIVES=1``), and statically by this package, which
walks Python sources with :mod:`ast` and flags collective call sites whose
*schedule* can diverge across ranks before any code runs.

Rules (each suppressible with ``# spmdlint: disable=SPMDxxx``):

========  ==================================================================
SPMD001   collectives differ between the arms of a rank-dependent branch
SPMD002   conditional early exit (return/raise/continue/break) under a
          rank-dependent or rank-local condition skips later collectives
SPMD003   collective inside a loop whose trip count is not derived from a
          replicated value (allreduce/bcast result, argument, constant)
SPMD004   object-pickling collective on a hot path (inside a loop) where a
          buffer collective exists
SPMD005   reduction input built from unordered set iteration
          (non-deterministic ordering across ranks)
========  ==================================================================

Use :func:`lint_paths` / :func:`lint_source` programmatically, or the CLI::

    python -m repro check src/repro --strict --format json
"""

from .spmdlint import (
    RULES,
    Finding,
    lint_file,
    lint_paths,
    lint_source,
)

__all__ = ["Finding", "RULES", "lint_source", "lint_file", "lint_paths"]
