"""Flow-sensitive distribution-state & index-space abstract interpreter.

The schedule/ownership linters check *when* ranks communicate; this pass
checks *what the data means*.  It interprets each function over the two
abstract domains of :mod:`.distlattice` — the index space of id-carrying
values and the distribution state of per-vertex arrays (with a halo
fresh/stale bit) — walking statements in control-flow order with
branch-join and a two-pass loop body so back-edge effects are visible.

Correctness rules (``SPMD013``–``SPMD016``):

* **SPMD013** — index-space confusion: a local id flows into
  ``map.get`` (expects global ids), a global id indexes ``unmap`` or a
  locally-allocated array (expects local ids), or — in deep mode — a
  call binds a wrong-space argument to a parameter whose expectation was
  summarized from the callee's own ``map``/``unmap`` usage;
* **SPMD014** — stale-ghost read: the ghost slice of a ghost-extended
  array is read after a local write with no intervening halo exchange;
* **SPMD015** — whole-array reduction over a ghost-extended array:
  ghost copies are double-counted (reduce ``x[:n_loc]`` instead);
* **SPMD016** — collective reduction buffer whose shape/dtype differs
  across ranks at its construction site (rank-derived size, or an
  owner-partitioned/ghost-extended buffer whose length is ``n_loc``-ish).

Performance rules (``PERF001``–``PERF003``):

* **PERF001** — loop-invariant collective inside an iteration loop
  (mechanically hoistable: the autofixer moves it above the loop);
* **PERF002** — object-list collective over ``np.split`` parts where the
  flat-buffer path exists: ``alltoallv(np.split(x, np.cumsum(c)[:-1]))``
  is element-for-element equivalent to ``alltoallv_flat(x, c)`` (both
  return concatenated data in source-rank order) without the per-part
  pickling; the substitution is attached as a SARIF-only suggestion;
* **PERF003** — per-iteration ndarray allocation feeding an exchange or
  collective sink inside a hot loop (hoist the buffer and reuse it;
  auto-hoisted only for ``np.empty``/``np.empty_like``, where no
  per-iteration re-initialization semantics can be lost).

Deep composition: :func:`build_dist_summaries` runs the same interpreter
callees-first over the PR-7 call graph, recording each function's
parameter *expectations* (global/local), halo *effects* (refreshes /
stales) and return provenance (space / split-list / ghost allocation);
:func:`lint_distribution` consumes the table at call sites so states
propagate across module boundaries.  Like every pass in this package the
rules are provenance-keyed and precision-first: a value only leaves the
top element through an explicit idiom, so a finding is almost always
real.  See DESIGN.md §14.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ._astutil import (
    RANK_LOCAL,
    _SCOPE_BARRIERS,
    Finding,
    _classify,
    _collective_op,
    _fn_params,
    _infer_env,
    _is_subcomm_receiver,
    _subcomm_names,
    _target_names,
    _walk_in_scope,
)
from .distlattice import (
    ALLOC_FNS,
    ALLOC_LIKE_FNS,
    DIST_GHOST,
    DIST_OWNER,
    DIST_REPL,
    SPACE_GLOBAL,
    SPACE_LOCAL,
    SPACE_OWNER,
    SPACE_UNKNOWN,
    ArrayState,
    DistEnv,
    is_ghosty_name,
    root_name,
    seeded_space,
)

__all__ = ["DIST_RULES", "PERF_RULES", "lint_distribution",
           "DistSummary", "DistTable", "build_dist_summaries",
           "dist_digest"]

# ---------------------------------------------------------------------------
# rule catalog
# ---------------------------------------------------------------------------
#: Distribution-state correctness rules (this module).
DIST_RULES: dict[str, str] = {
    "SPMD013": "index-space confusion: a global vertex id indexes a "
               "local-id structure (unmap / locally-allocated array) or a "
               "local id flows into map.get, keyed on map/unmap/owner_of "
               "provenance",
    "SPMD014": "stale-ghost read: the ghost slice of a ghost-extended "
               "array is read after a local write with no intervening "
               "halo exchange",
    "SPMD015": "reduction over a ghost-extended array double-counts ghost "
               "copies (each ghost is also counted by its owner rank)",
    "SPMD016": "collective reduction buffer whose shape/dtype differs "
               "across ranks at its construction site",
}

#: SPMD performance rules (this module).
PERF_RULES: dict[str, str] = {
    "PERF001": "loop-invariant collective inside an iteration loop: every "
               "iteration pays a world-synchronous round for the same "
               "value (hoistable)",
    "PERF002": "object-list collective over np.split parts where the "
               "flat-buffer path (alltoallv_flat / AlltoallvPlan) sends "
               "the same bytes without per-part pickling",
    "PERF003": "per-iteration ndarray allocation inside an SPMD hot loop "
               "feeding an exchange/collective sink (hoist the buffer and "
               "reuse it)",
}

#: Collectives PERF001 considers hoistable when arguments are invariant.
_HOISTABLE = frozenset({
    "allreduce", "bcast", "gather", "allgather", "gatherv", "allgatherv",
    "scan", "exscan", "reduce",
})

#: np functions that preserve the index space of their (first) argument.
_NP_PROPAGATE = frozenset({
    "unique", "sort", "concatenate", "asarray", "ascontiguousarray",
    "array", "intersect1d", "union1d", "setdiff1d", "hstack", "copy",
})
#: ndarray methods that preserve the index space of their receiver.
_METHOD_PROPAGATE = frozenset({
    "astype", "copy", "ravel", "reshape", "flatten", "view",
})

#: ndarray reducers that fold the whole array (SPMD015 sinks).
_NP_REDUCERS = frozenset({"sum", "mean", "count_nonzero"})


def _is_np(node: ast.AST) -> bool:
    return isinstance(node, ast.Name) and node.id in ("np", "numpy")


def _is_np_call(call: ast.Call, names: frozenset[str] | set[str]) -> bool:
    f = call.func
    return (isinstance(f, ast.Attribute) and f.attr in names
            and _is_np(f.value))


def _is_np_split(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("split", "array_split")
            and _is_np(node.func.value))


def _mapish(node: ast.AST) -> bool:
    """Is this expression the global→local hash map (``X.map`` / a name
    with a ``map`` segment other than ``unmap``)?"""
    if isinstance(node, ast.Attribute):
        return node.attr == "map"
    if isinstance(node, ast.Name):
        return "map" in node.id.lower().split("_") and node.id != "unmap"
    return False


def _call_arg_exprs(call: ast.Call) -> list[ast.expr]:
    return list(call.args) + [kw.value for kw in call.keywords]


# ---------------------------------------------------------------------------
# interprocedural distribution summaries (deep mode)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DistSummary:
    """Distribution facts about one function, for call-site composition."""

    key: str
    positional: tuple[str, ...]
    params: tuple[str, ...]
    #: (param, expected index space) pairs, sorted — from the callee's
    #: own ``map.get``/``unmap[...]`` usage (direct or transitive).
    expects: tuple[tuple[str, str], ...]
    #: Parameters whose ghost region the callee refreshes (halo exchange).
    refreshes: frozenset[str]
    #: Parameters the callee writes locally (subscript store) without a
    #: subsequent exchange being provable — treated as staling.
    stales: frozenset[str]
    #: Index space of the return value, when every return agrees.
    returns_space: str | None
    #: The function returns ``np.split`` parts (list-of-arrays payload).
    returns_split: bool
    #: The function returns a fresh ghost-extended allocation.
    returns_ghost: bool

    @property
    def expects_map(self) -> dict[str, str]:
        return dict(self.expects)


@dataclass
class DistTable:
    """Distribution-summary lookup bound to the PR-7 call graph."""

    graph: object                       # .callgraph.CallGraph
    by_key: dict[str, DistSummary] = field(default_factory=dict)

    def for_call(self, mod, call: ast.Call) -> DistSummary | None:
        if mod is None:
            return None
        fi = self.graph.resolve(mod, call)
        return self.by_key.get(fi.key) if fi is not None else None


def build_dist_summaries(graph) -> DistTable:
    """Run the interpreter callees-first and record per-function facts."""
    table = DistTable(graph=graph)
    for component in graph.topo_order():
        # Members of a recursion cycle see each other as unknown calls
        # (their summaries are not in the table yet) — documented
        # soundness limit shared with the schedule summaries.
        for fi in component:
            interp = _DistInterp(
                fi.node, str(fi.module.path), select=frozenset(),
                source=None, table=table, mod=fi.module)
            interp.run()
            args = fi.node.args
            positional = tuple(
                a.arg for a in args.posonlyargs + args.args)
            spaces = {sp for sp, _, _ in interp.returns}
            r_space = spaces.pop() if (
                len(spaces) == 1 and SPACE_UNKNOWN not in spaces) else None
            table.by_key[fi.key] = DistSummary(
                key=fi.key, positional=positional,
                params=tuple(_fn_params(fi.node)),
                expects=tuple(sorted(interp.param_expects.items())),
                refreshes=frozenset(interp.param_refreshes),
                stales=frozenset(interp.param_stales
                                 - interp.param_refreshes),
                returns_space=r_space,
                returns_split=any(s for _, s, _ in interp.returns),
                returns_ghost=any(g for _, _, g in interp.returns))
    return table


def dist_digest(table: DistTable) -> str:
    """Stable content hash of the distribution-summary table."""
    h = hashlib.sha256()
    for key in sorted(table.by_key):
        s = table.by_key[key]
        h.update(repr((s.key, s.positional, s.params, s.expects,
                       sorted(s.refreshes), sorted(s.stales),
                       s.returns_space, s.returns_split,
                       s.returns_ghost)).encode())
    return h.hexdigest()


def _bind_args(summary: DistSummary,
               call: ast.Call) -> list[tuple[str, ast.expr]]:
    """Call-site argument expressions onto callee parameter names."""
    out: list[tuple[str, ast.expr]] = []
    for i, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        if i < len(summary.positional):
            out.append((summary.positional[i], arg))
    for kw in call.keywords:
        if kw.arg is not None and kw.arg in summary.params:
            out.append((kw.arg, kw.value))
    return out


# ---------------------------------------------------------------------------
# the interpreter
# ---------------------------------------------------------------------------
class _DistInterp:
    """Abstract interpretation of one function over the dist lattice."""

    def __init__(self, fn: ast.FunctionDef | ast.AsyncFunctionDef,
                 path: str, select: frozenset[str],
                 source: str | None = None,
                 table: DistTable | None = None, mod=None):
        self.fn = fn
        self.path = path
        self.select = select
        self.source = source
        self.table = table
        self.mod = mod
        self.env = DistEnv()
        self.findings: list[Finding] = []
        self._seen: set[tuple] = set()
        self._emitting = True
        self.param_set = frozenset(_fn_params(fn))
        #: Names rebound inside the function (their seeded meaning died).
        self.rebound: set[str] = set()
        #: Summary facts observed during the walk.
        self.param_expects: dict[str, str] = {}
        self.param_refreshes: set[str] = set()
        self.param_stales: set[str] = set()
        #: (space, is_split_payload, is_ghost_alloc) per return statement.
        self.returns: list[tuple[str, bool, bool]] = []
        # Replication env for SPMD016 construction-site classification.
        self.repl_env = _infer_env(fn, list(self.param_set))
        # Sub-communicator receivers are exempt from SPMD016.
        self.subcomm_names = _subcomm_names(fn)
        for p in self.param_set:
            sp = seeded_space(p)
            if sp != SPACE_UNKNOWN:
                self.env.spaces[p] = sp
        from .distlattice import _EXTENT_NAMES
        for p in self.param_set:
            if p in _EXTENT_NAMES:
                self.env.extents[p] = _EXTENT_NAMES[p]

    def run(self) -> list[Finding]:
        self._exec_block(self.fn.body)
        self._check_perf_loops()
        return self.findings

    # -- reporting -----------------------------------------------------------
    def _emit(self, rule: str, node: ast.AST, message: str,
              fix: dict | None = None) -> None:
        if rule not in self.select or not self._emitting:
            return
        key = (rule, node.lineno, node.col_offset, message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(Finding(
            rule=rule, message=message, path=self.path,
            line=node.lineno, col=node.col_offset + 1,
            function=self.fn.name, fix=fix))

    def _segment(self, node: ast.AST) -> str | None:
        if self.source is None:
            return None
        try:
            return ast.get_source_segment(self.source, node)
        except Exception:
            return None

    # -- statement walk ------------------------------------------------------
    def _exec_block(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, _SCOPE_BARRIERS):
            return  # nested scopes are interpreted as their own functions
        if isinstance(stmt, ast.Assign):
            self._scan_expr(stmt.value)
            for tgt in stmt.targets:
                self._assign(tgt, stmt.value, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._scan_expr(stmt.value)
                self._assign(stmt.target, stmt.value, stmt)
        elif isinstance(stmt, ast.AugAssign):
            self._scan_expr(stmt.value)
            if isinstance(stmt.target, (ast.Subscript, ast.Attribute)):
                self._store_target(stmt.target, stmt)
            # plain `x += e` keeps x's facts: uniform full-array updates
            # are the common idiom and do not desynchronize the halo
        elif isinstance(stmt, ast.If):
            self._scan_expr(stmt.test)
            pre = self.env.copy()
            self._exec_block(stmt.body)
            after_body = self.env
            self.env = pre
            self._exec_block(stmt.orelse)
            self.env.join(after_body)
        elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            self._exec_loop(stmt)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                self._exec_block(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_expr(item.context_expr)
                if item.optional_vars is not None:
                    for name in _target_names(item.optional_vars):
                        self._clear_name(name)
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._scan_expr(stmt.value)
                self._note_return(stmt.value)
        else:
            for fname, value in ast.iter_fields(stmt):
                if isinstance(value, ast.expr):
                    self._scan_expr(value)
                elif isinstance(value, list):
                    for v in value:
                        if isinstance(v, ast.expr):
                            self._scan_expr(v)

    def _exec_loop(self, stmt: ast.For | ast.AsyncFor | ast.While) -> None:
        driver = stmt.test if isinstance(stmt, ast.While) else stmt.iter
        pre = self.env.copy()
        saved = self._emitting
        # Pass 1 (silent) computes the body's effects so the join below
        # carries back-edge facts (a write left stale at the bottom of
        # the body is visible to a ghost read at the top on pass 2).
        self._emitting = False
        self._scan_expr(driver)
        self._bind_loop_target(stmt)
        self._exec_block(stmt.body)
        self.env.join(pre)
        self._emitting = saved
        self._scan_expr(driver)
        self._bind_loop_target(stmt)
        self._exec_block(stmt.body)
        self.env.join(pre)  # the loop may run zero times
        self._exec_block(stmt.orelse)

    def _bind_loop_target(self, stmt) -> None:
        if not isinstance(stmt, (ast.For, ast.AsyncFor)):
            return
        sp = self.space_of(stmt.iter)
        for name in _target_names(stmt.target):
            self._clear_name(name)
            if sp != SPACE_UNKNOWN:
                self.env.spaces[name] = sp

    def _note_return(self, value: ast.expr) -> None:
        split = (_is_np_split(value)
                 or (isinstance(value, ast.Name)
                     and value.id in self.env.split_lists)
                 or (isinstance(value, ast.ListComp)
                     and _is_np_split(value.elt)))
        ghost = False
        if isinstance(value, ast.Name):
            st = self.env.arrays.get(value.id)
            ghost = st is not None and st.dist == DIST_GHOST
        elif isinstance(value, ast.Call) and _is_np_call(
                value, ALLOC_FNS | ALLOC_LIKE_FNS):
            ghost = self._alloc_state(value, 0) is not None and \
                self._alloc_state(value, 0).dist == DIST_GHOST
        self.returns.append((self.space_of(value), split, ghost))

    # -- assignment handling -------------------------------------------------
    def _clear_name(self, name: str) -> None:
        self.rebound.add(name)
        self.env.spaces.pop(name, None)
        self.env.arrays.pop(name, None)
        self.env.extents.pop(name, None)
        self.env.split_lists.pop(name, None)
        self.env.buf_alloc.pop(name, None)

    def _assign(self, target: ast.expr, value: ast.expr,
                stmt: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            self._bind_name(target.id, value, stmt)
        elif isinstance(target, (ast.Tuple, ast.List)):
            elts = target.elts
            if (isinstance(value, (ast.Tuple, ast.List))
                    and len(value.elts) == len(elts)
                    and not any(isinstance(e, ast.Starred) for e in elts)):
                for t, v in zip(elts, value.elts):
                    self._assign(t, v, stmt)
                return
            summary = self._summary_for(value)
            for name in _target_names(target):
                self._clear_name(name)
                if summary is not None and summary.returns_split:
                    # e.g. ``send_u, send_v = _grouped_send(...)``: each
                    # element is an np.split parts list.
                    self.env.split_lists[name] = {}
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            self._store_target(target, stmt)
        elif isinstance(target, ast.Starred):
            for name in _target_names(target):
                self._clear_name(name)

    def _summary_for(self, value: ast.expr) -> DistSummary | None:
        if (self.table is not None and isinstance(value, ast.Call)):
            return self.table.for_call(self.mod, value)
        return None

    def _bind_name(self, name: str, value: ast.expr,
                   stmt: ast.stmt) -> None:
        self._clear_name(name)
        ext = self.env.extent_of(value)
        if ext is not None:
            self.env.extents[name] = ext
            return
        if isinstance(value, ast.Name):
            # Alias: share the source name's facts.
            src = value.id
            if src in self.env.spaces:
                self.env.spaces[name] = self.env.spaces[src]
            elif seeded_space(src) != SPACE_UNKNOWN:
                self.env.spaces[name] = seeded_space(src)
            if src in self.env.arrays:
                self.env.arrays[name] = self.env.arrays[src]
            if src in self.env.split_lists:
                self.env.split_lists[name] = self.env.split_lists[src]
            if src in self.env.buf_alloc:
                self.env.buf_alloc[name] = self.env.buf_alloc[src]
            return
        if isinstance(value, ast.Call):
            if _is_np_call(value, ALLOC_FNS | ALLOC_LIKE_FNS):
                st = self._alloc_state(value, stmt.lineno)
                if st is not None:
                    self.env.arrays[name] = st
                level = max(
                    (_classify(a, self.repl_env)
                     for a in _call_arg_exprs(value)), default=0)
                if level >= RANK_LOCAL:
                    self.env.buf_alloc[name] = (level, stmt.lineno)
                return
            if _is_np_split(value):
                self.env.split_lists[name] = self._split_info(value)
                return
            summary = self._summary_for(value)
            if summary is not None:
                if summary.returns_split:
                    self.env.split_lists[name] = {}
                if summary.returns_ghost:
                    self.env.arrays[name] = ArrayState(
                        DIST_GHOST, None, stmt.lineno)
                if summary.returns_space is not None:
                    self.env.spaces[name] = summary.returns_space
                return
        sp = self.space_of(value)
        if sp != SPACE_UNKNOWN:
            self.env.spaces[name] = sp

    def _alloc_state(self, call: ast.Call, line: int) -> ArrayState | None:
        """Distribution state of an ``np.zeros``-style allocation."""
        if call.func.attr in ALLOC_LIKE_FNS:
            if call.args and isinstance(call.args[0], ast.Name):
                src = self.env.arrays.get(call.args[0].id)
                if src is not None:
                    return ArrayState(src.dist, None, line)
            return None
        size = call.args[0] if call.args else None
        if size is None:
            for kw in call.keywords:
                if kw.arg == "shape":
                    size = kw.value
        dist = self.env.alloc_dist(size)
        return ArrayState(dist, None, line) if dist is not None else None

    def _store_target(self, target: ast.expr, stmt: ast.stmt) -> None:
        if isinstance(target, ast.Subscript):
            self._scan_expr(target.slice)
            self._check_subscript_space(target)
        root = root_name(target)
        if root is None:
            return
        if isinstance(target, ast.Subscript):
            if root in self.param_set and root not in self.rebound:
                self.param_stales.add(root)
            st = self.env.arrays.get(root)
            if st is not None:
                if (st.dist == DIST_GHOST
                        and self._is_ghost_region(target.slice)):
                    # A direct ghost-region store is the halo-delivery
                    # idiom (values[n_loc:] = recv): treat as a refresh.
                    self.env.arrays[root] = st.refreshed()
                else:
                    self.env.arrays[root] = st.staled(stmt.lineno)

    # -- expression scan -----------------------------------------------------
    def _scan_expr(self, node: ast.AST | None) -> None:
        if node is None:
            return
        stack: list[ast.AST] = [node]
        while stack:
            n = stack.pop()
            if isinstance(n, ast.Lambda):
                continue
            if isinstance(n, ast.Call):
                self._handle_call(n)
            elif isinstance(n, ast.Subscript):
                self._check_subscript_load(n)
            stack.extend(ast.iter_child_nodes(n))

    # -- index-space inference -----------------------------------------------
    def space_of(self, node: ast.AST | None) -> str:
        if node is None:
            return SPACE_UNKNOWN
        if isinstance(node, ast.Name):
            if node.id in self.env.spaces:
                return self.env.spaces[node.id]
            if node.id in self.env.arrays or node.id in self.rebound:
                return SPACE_UNKNOWN
            return seeded_space(node.id)
        if isinstance(node, ast.Attribute):
            if node.attr == "unmap":
                return SPACE_GLOBAL
            if node.attr == "ghost_tasks":
                return SPACE_OWNER
            return seeded_space(node.attr)
        if isinstance(node, ast.Subscript):
            if (isinstance(node.value, ast.Attribute)
                    and node.value.attr == "unmap"):
                return SPACE_GLOBAL
            r = root_name(node)
            if r is not None and r in self.env.arrays:
                return SPACE_UNKNOWN  # data array: elements are values
            return self.space_of(node.value)
        if isinstance(node, ast.Call):
            return self._call_space(node)
        if isinstance(node, ast.BinOp):
            left, right = (self.space_of(node.left),
                           self.space_of(node.right))
            if left == right:
                return left
            if left == SPACE_UNKNOWN:
                return right
            if right == SPACE_UNKNOWN:
                return left
            return SPACE_UNKNOWN
        if isinstance(node, ast.UnaryOp):
            return self.space_of(node.operand)
        if isinstance(node, ast.IfExp):
            a, b = self.space_of(node.body), self.space_of(node.orelse)
            return a if a == b else SPACE_UNKNOWN
        if isinstance(node, ast.Starred):
            return self.space_of(node.value)
        return SPACE_UNKNOWN

    def _call_space(self, call: ast.Call) -> str:
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr == "get" and _mapish(func.value):
                return SPACE_LOCAL
            if func.attr == "owner_of":
                return SPACE_OWNER
            if _is_np(func.value) and func.attr in _NP_PROPAGATE:
                if not call.args:
                    return SPACE_UNKNOWN
                a0 = call.args[0]
                if isinstance(a0, (ast.List, ast.Tuple)):
                    spaces = {self.space_of(e) for e in a0.elts}
                    spaces.discard(SPACE_UNKNOWN)
                    return spaces.pop() if len(spaces) == 1 \
                        else SPACE_UNKNOWN
                return self.space_of(a0)
            if func.attr in _METHOD_PROPAGATE:
                return self.space_of(func.value)
            return SPACE_UNKNOWN
        if isinstance(func, ast.Name) and func.id == "sorted" and call.args:
            return self.space_of(call.args[0])
        return SPACE_UNKNOWN

    # -- call handling: bridges, halo transitions, collectives ---------------
    def _handle_call(self, call: ast.Call) -> None:
        func = call.func
        attr = func.attr if isinstance(func, ast.Attribute) else None

        if attr == "get" and _mapish(func.value) and call.args:
            self._check_map_get(call)
            return
        if attr is not None and (attr.startswith("exchange")
                                 or attr == "execute"):
            for a in _call_arg_exprs(call):
                if isinstance(a, ast.Name):
                    if a.id in self.env.arrays:
                        st = self.env.arrays[a.id]
                        self.env.arrays[a.id] = st.refreshed()
                    if (a.id in self.param_set
                            and a.id not in self.rebound):
                        self.param_refreshes.add(a.id)
            return
        if attr == "apply_updates":
            # Incremental updates land in the local region: every known
            # ghost-extended array's halo is stale until re-exchanged.
            for name, st in list(self.env.arrays.items()):
                if st.dist == DIST_GHOST:
                    self.env.arrays[name] = st.staled(call.lineno)
            return

        op = _collective_op(call)
        if op is not None:
            if (op in ("allreduce", "reduce") and call.args
                    and not _is_subcomm_receiver(call, self.subcomm_names)):
                # Subgroup reductions may legitimately size their buffer
                # per subgroup (identical within the group's members).
                self._check_spmd016(op, call)
            if op in ("alltoallv", "alltoall") and call.args:
                self._check_perf002(call, op)
            return

        if (attr in ("sum", "mean") and isinstance(func.value, ast.Name)
                and not call.args):
            st = self.env.arrays.get(func.value.id)
            if st is not None and st.dist == DIST_GHOST:
                self._emit(
                    "SPMD015", call,
                    f"'{func.value.id}.{attr}()' reduces the whole "
                    f"ghost-extended array (allocated at line "
                    f"{st.alloc_line}): ghost entries are also counted "
                    f"by their owner rank — reduce "
                    f"'{func.value.id}[:n_loc]' instead")
            return
        if (attr in _NP_REDUCERS and isinstance(func, ast.Attribute)
                and _is_np(func.value) and call.args
                and isinstance(call.args[0], ast.Name)):
            st = self.env.arrays.get(call.args[0].id)
            if st is not None and st.dist == DIST_GHOST:
                self._emit(
                    "SPMD015", call,
                    f"'np.{attr}({call.args[0].id})' reduces the whole "
                    f"ghost-extended array (allocated at line "
                    f"{st.alloc_line}): ghost entries are also counted "
                    f"by their owner rank — reduce the owned slice "
                    f"'[:n_loc]' instead")
            return

        summary = (self.table.for_call(self.mod, call)
                   if self.table is not None else None)
        if summary is not None:
            self._apply_summary(summary, call)
            return
        # Unknown call: it may refresh or rewrite any array it receives —
        # clear staleness rather than risk a false SPMD014 downstream.
        for a in _call_arg_exprs(call):
            if isinstance(a, ast.Name) and a.id in self.env.arrays:
                self.env.arrays[a.id] = self.env.arrays[a.id].refreshed()

    def _apply_summary(self, summary: DistSummary, call: ast.Call) -> None:
        expects = summary.expects_map
        for pname, expr in _bind_args(summary, call):
            want = expects.get(pname)
            got = self.space_of(expr)
            if want is not None and got != SPACE_UNKNOWN and got != want:
                if {want, got} == {SPACE_GLOBAL, SPACE_LOCAL}:
                    callee = summary.key.rsplit(".", 1)[-1]
                    self._emit(
                        "SPMD013", expr,
                        f"{got}-space ids passed to parameter '{pname}' "
                        f"of '{callee}', which uses them as {want} ids "
                        f"(map/unmap provenance in the callee)")
            if isinstance(expr, ast.Name):
                # Propagate the callee's halo effects onto our params.
                if (expr.id in self.param_set
                        and expr.id not in self.rebound):
                    if pname in summary.refreshes:
                        self.param_refreshes.add(expr.id)
                    elif pname in summary.stales:
                        self.param_stales.add(expr.id)
                    if pname in expects:
                        self.param_expects.setdefault(
                            expr.id, expects[pname])
                if expr.id in self.env.arrays:
                    st = self.env.arrays[expr.id]
                    if pname in summary.refreshes:
                        self.env.arrays[expr.id] = st.refreshed()
                    elif pname in summary.stales:
                        self.env.arrays[expr.id] = st.staled(call.lineno)

    # -- SPMD013 -------------------------------------------------------------
    def _check_map_get(self, call: ast.Call) -> None:
        arg = call.args[0]
        if (isinstance(arg, ast.Name) and arg.id in self.param_set
                and arg.id not in self.rebound):
            self.param_expects.setdefault(arg.id, SPACE_GLOBAL)
        if self.space_of(arg) != SPACE_LOCAL:
            return
        recv = call.func.value          # the ``X.map`` / map-named expr
        fix = None
        if (isinstance(recv, ast.Attribute)
                and arg.lineno == getattr(arg, "end_lineno", -1)):
            owner_src = self._segment(recv.value)
            arg_src = self._segment(arg)
            if owner_src and arg_src:
                fix = {"kind": "replace", "line": arg.lineno,
                       "col": arg.col_offset,
                       "end_col": arg.end_col_offset,
                       "text": f"{owner_src}.unmap[{arg_src}]",
                       "apply": True}
        recv_src = self._segment(recv) or "map"
        self._emit(
            "SPMD013", arg,
            f"local ids passed to '{recv_src}.get', which maps *global* "
            f"ids to local ids: translate first with unmap[...]",
            fix=fix)

    def _check_subscript_space(self, sub: ast.Subscript) -> None:
        """SPMD013 on array indexing (loads and stores alike)."""
        idx = sub.slice
        if isinstance(idx, (ast.Slice, ast.Tuple)):
            return
        if (isinstance(sub.value, ast.Attribute)
                and sub.value.attr == "unmap"):
            if (isinstance(idx, ast.Name) and idx.id in self.param_set
                    and idx.id not in self.rebound):
                self.param_expects.setdefault(idx.id, SPACE_LOCAL)
            if self.space_of(idx) == SPACE_GLOBAL:
                self._emit(
                    "SPMD013", sub,
                    "global ids index 'unmap', which is indexed by "
                    "*local* ids (local -> global): use map.get(...) for "
                    "the global -> local direction")
            return
        name = sub.value.id if isinstance(sub.value, ast.Name) else None
        if name is None:
            return
        st = self.env.arrays.get(name)
        if st is None:
            return
        sp = self.space_of(idx)
        if st.dist in (DIST_GHOST, DIST_OWNER) and sp == SPACE_GLOBAL:
            self._emit(
                "SPMD013", sub,
                f"global ids index '{name}', a {st.dist} array "
                f"(allocated at line {st.alloc_line}) indexed by local "
                f"ids: translate with map.get(...) first")
        elif st.dist == DIST_REPL and sp == SPACE_LOCAL:
            self._emit(
                "SPMD013", sub,
                f"local ids index '{name}', a replicated array indexed "
                f"by global ids: translate with unmap[...] first")

    # -- SPMD014 -------------------------------------------------------------
    def _is_ghost_region(self, idx: ast.AST) -> bool:
        if isinstance(idx, ast.Slice):
            return (idx.lower is not None
                    and self.env.extent_of(idx.lower) == "n_loc"
                    and (idx.upper is None
                         or self.env.extent_of(idx.upper) == "n_total"))
        if isinstance(idx, ast.Name):
            return is_ghosty_name(idx.id)
        return False

    def _check_subscript_load(self, sub: ast.Subscript) -> None:
        self._check_subscript_space(sub)
        name = sub.value.id if isinstance(sub.value, ast.Name) else None
        if name is None:
            return
        st = self.env.arrays.get(name)
        if (st is not None and st.dist == DIST_GHOST
                and st.stale_line is not None
                and self._is_ghost_region(sub.slice)):
            self._emit(
                "SPMD014", sub,
                f"ghost slice of '{name}' read after the local write at "
                f"line {st.stale_line} with no intervening halo "
                f"exchange: ghost values are stale copies of remote "
                f"owners")

    # -- SPMD016 -------------------------------------------------------------
    def _check_spmd016(self, op: str, call: ast.Call) -> None:
        a0 = call.args[0]
        if not isinstance(a0, ast.Name):
            return
        if a0.id in self.env.buf_alloc:
            _, line = self.env.buf_alloc[a0.id]
            self._emit(
                "SPMD016", call,
                f"'{op}' buffer '{a0.id}' is allocated (line {line}) "
                f"with a rank-dependent shape/dtype: element-wise "
                f"reduction requires identical buffers on every rank — "
                f"size it from a replicated value")
            return
        st = self.env.arrays.get(a0.id)
        if st is not None and st.dist in (DIST_OWNER, DIST_GHOST):
            self._emit(
                "SPMD016", call,
                f"'{op}' buffer '{a0.id}' is {st.dist} (allocated at "
                f"line {st.alloc_line}): its length varies per rank, so "
                f"ranks disagree on the reduction shape — reduce a "
                f"replicated/n_global buffer or a scalar")

    # -- PERF002 -------------------------------------------------------------
    def _split_info(self, call: ast.Call) -> dict:
        """Fix metadata for ``np.split(payload, np.cumsum(c)[:-1])``."""
        if len(call.args) < 2:
            return {}
        payload, splits = call.args[0], call.args[1]
        counts = None
        if (isinstance(splits, ast.Subscript)
                and isinstance(splits.value, ast.Call)
                and _is_np_call(splits.value, {"cumsum"})
                and splits.value.args
                and isinstance(splits.slice, ast.Slice)
                and splits.slice.lower is None
                and isinstance(splits.slice.upper, ast.UnaryOp)
                and isinstance(splits.slice.upper.op, ast.USub)
                and isinstance(splits.slice.upper.operand, ast.Constant)
                and splits.slice.upper.operand.value == 1):
            counts = splits.value.args[0]
        payload_src = self._segment(payload)
        counts_src = self._segment(counts) if counts is not None else None
        if payload_src and counts_src:
            return {"payload": payload_src, "counts": counts_src}
        return {}

    def _check_perf002(self, call: ast.Call, op: str) -> None:
        a0 = call.args[0]
        info = None
        if isinstance(a0, ast.Name) and a0.id in self.env.split_lists:
            info = self.env.split_lists[a0.id]
        elif _is_np_split(a0):
            info = self._split_info(a0)
        if info is None:
            return
        fix = None
        if (info.get("payload") and info.get("counts")
                and call.lineno == getattr(call, "end_lineno", -1)):
            comm_src = self._segment(call.func.value)
            if comm_src:
                fix = {"kind": "replace", "line": call.lineno,
                       "col": call.col_offset,
                       "end_col": call.end_col_offset,
                       "text": f"{comm_src}.alltoallv_flat("
                               f"{info['payload']}, {info['counts']})",
                       # Suggestion only: applying needs the payload and
                       # counts to still be live here, which the fixer
                       # does not prove — surfaced via SARIF fixes.
                       "apply": False}
        hint = (f": send '{info['payload']}' with counts "
                f"'{info['counts']}' via alltoallv_flat"
                if info.get("payload") else
                ": pass the un-split payload and counts to alltoallv_flat")
        self._emit(
            "PERF002", call,
            f"'{op}' over np.split parts pickles every part; the flat "
            f"path (alltoallv_flat / AlltoallvPlan) sends the same "
            f"bytes zero-copy in the same source-rank order{hint}",
            fix=fix)

    # -- PERF001 / PERF003 ---------------------------------------------------
    def _check_perf_loops(self) -> None:
        for node in _walk_in_scope(self.fn):
            if isinstance(node, (ast.For, ast.While)):
                self._perf_loop(node)

    def _loop_bindings(self, loop) -> tuple[dict[str, int], set[str]]:
        """(name -> rebind count, mutated-name set) for a loop subtree.

        Rebind counts cover only plain name bindings (a hoist candidate
        must be the name's sole binder); the mutated set additionally
        includes subscript/attribute store roots (in-place writes)."""
        counts: dict[str, int] = {}
        mutated: set[str] = set()

        def bump(names: Iterable[str]) -> None:
            for n in names:
                counts[n] = counts.get(n, 0) + 1
                mutated.add(n)

        for n in _walk_in_scope(loop):
            if isinstance(n, ast.Assign):
                for t in n.targets:
                    bump(_target_names(t))
                    r = root_name(t)
                    if r is not None and not isinstance(t, ast.Name):
                        mutated.add(r)
            elif isinstance(n, (ast.AnnAssign, ast.AugAssign)):
                bump(_target_names(n.target))
                r = root_name(n.target)
                if r is not None and not isinstance(n.target, ast.Name):
                    mutated.add(r)
            elif isinstance(n, (ast.For, ast.AsyncFor)):
                bump(_target_names(n.target))
            elif isinstance(n, ast.withitem):
                if n.optional_vars is not None:
                    bump(_target_names(n.optional_vars))
        if isinstance(loop, (ast.For, ast.AsyncFor)):
            bump(_target_names(loop.target))
        return counts, mutated

    @staticmethod
    def _call_arg_names(loop, exclude: ast.Call) -> set[str]:
        """Bare-Name arguments of calls in the loop (possible in-place
        mutation targets, e.g. ``halo.exchange(x)``), excluding the
        candidate call itself (collectives do not mutate their inputs)."""
        out: set[str] = set()
        for n in _walk_in_scope(loop):
            if isinstance(n, ast.Call) and n is not exclude:
                for a in _call_arg_exprs(n):
                    if isinstance(a, ast.Name):
                        out.add(a.id)
        return out

    @staticmethod
    def _names_in(nodes: Iterable[ast.AST]) -> set[str]:
        out: set[str] = set()
        for node in nodes:
            for n in ast.walk(node):
                if isinstance(n, ast.Name):
                    out.add(n.id)
        return out

    def _hoist_fix(self, stmt: ast.stmt, loop: ast.stmt) -> dict | None:
        if self.source is None:
            return None
        return {"kind": "hoist",
                "lines": [stmt.lineno,
                          getattr(stmt, "end_lineno", stmt.lineno)],
                "before": loop.lineno,
                "dedent": stmt.col_offset - loop.col_offset,
                "apply": True}

    def _perf_loop(self, loop: ast.For | ast.While) -> None:
        if len(loop.body) < 2:
            return
        bindings, stored = self._loop_bindings(loop)
        test_names = (self._names_in([loop.test])
                      if isinstance(loop, ast.While) else set())
        for stmt in loop.body:
            if (not isinstance(stmt, ast.Assign)
                    or len(stmt.targets) != 1
                    or not isinstance(stmt.targets[0], ast.Name)):
                continue
            target = stmt.targets[0].id
            val = stmt.value
            if not isinstance(val, ast.Call):
                continue
            arg_exprs = _call_arg_exprs(val)
            has_nested_call = any(
                isinstance(n, ast.Call)
                for a in arg_exprs for n in ast.walk(a))
            op = _collective_op(val)
            if op in _HOISTABLE:
                if has_nested_call or bindings.get(target, 0) != 1:
                    continue
                if target in test_names:
                    continue
                mutated = stored | self._call_arg_names(loop, exclude=val)
                mutated.discard(target)
                if self._names_in(arg_exprs) & mutated:
                    continue
                self._emit(
                    "PERF001", val,
                    f"'{op}' is loop-invariant (its arguments are not "
                    f"modified by the loop) but runs every iteration, "
                    f"paying a world-synchronous round each time: hoist "
                    f"it above the loop",
                    fix=self._hoist_fix(stmt, loop))
            elif _is_np_call(val, ALLOC_FNS | ALLOC_LIKE_FNS):
                if has_nested_call or bindings.get(target, 0) != 1:
                    continue
                mutated = stored | self._call_arg_names(loop, exclude=val)
                mutated.discard(target)
                if self._names_in(arg_exprs) & mutated:
                    continue
                if not self._feeds_comm_sink(target, loop):
                    continue
                fixable = val.func.attr in ("empty", "empty_like")
                self._emit(
                    "PERF003", val,
                    f"'np.{val.func.attr}' allocates a fresh buffer "
                    f"every iteration of a communication loop: hoist "
                    f"the allocation and reuse the buffer"
                    + ("" if fixable else
                       " (re-initialize in-place each iteration, e.g. "
                       "buf.fill(...), instead of reallocating)"),
                    fix=(self._hoist_fix(stmt, loop) if fixable
                         else None))

    def _feeds_comm_sink(self, name: str, loop: ast.stmt) -> bool:
        """Is ``name`` passed (bare) to an exchange/collective/plan call
        somewhere in the loop?"""
        for n in _walk_in_scope(loop):
            if not isinstance(n, ast.Call):
                continue
            func = n.func
            attr = func.attr if isinstance(func, ast.Attribute) else None
            is_sink = (_collective_op(n) is not None
                       or (attr is not None
                           and (attr.startswith("exchange")
                                or attr == "execute")))
            if not is_sink:
                continue
            for a in _call_arg_exprs(n):
                if isinstance(a, ast.Name) and a.id == name:
                    return True
        return False


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------
_ALL_RULES = frozenset(DIST_RULES) | frozenset(PERF_RULES)


def lint_distribution(tree: ast.Module, path: str,
                      select: frozenset[str],
                      source: str | None = None,
                      table: DistTable | None = None,
                      mod=None) -> list[Finding]:
    """Run the distribution/index-space pass over every function.

    ``source`` enables autofix construction (precise text spans);
    ``table``/``mod`` plug in the deep-mode summary composition.
    """
    if not (select & _ALL_RULES):
        return []
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            interp = _DistInterp(node, path, select, source=source,
                                 table=table, mod=mod)
            findings.extend(interp.run())
    return findings
