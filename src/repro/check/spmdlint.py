"""AST-based SPMD collective-schedule linter.

Model
-----
The analyzer treats every function that issues a collective — a call
``X.<op>(...)`` whose receiver's final identifier is communicator-named
(``comm``, ``*_comm``, ``comm_*``) — as an SPMD function, and classifies
every expression into the three-level replication lattice shared by all
static passes (see :mod:`._astutil`): ``REPLICATED`` < ``RANK_LOCAL`` <
``RANK_DEPENDENT``.

The heuristic is deliberately precision-first (a lint finding should almost
always be real): attributes of parameters (``g.n_global``) are assumed
replicated, so rank-locality enters only through ``comm.rank`` and the
per-rank collectives.  Calls that *forward* the communicator
(``helper(comm, …)``) count as collective sites for schedule purposes.
This module is intraprocedural; :mod:`.deep` reuses :class:`_FunctionLinter`
through its ``_extra_site_label`` / ``_call_level`` hooks to make the same
rules fire across call boundaries.

The schedule the rules model is the *world* schedule.  Collectives on a
sub-communicator (the result of ``comm.split``/``rows``/``cols``, or any
name following the ``row_comm``/``col_comm``/``sub_comm`` convention) are
scoped to their subgroup and exempt from SPMD001–005/SPMD016: a globally
rank-dependent guard such as ``rank // grid_cols == 0`` is uniform within
every grid-row subgroup, so exempting these sites is what keeps the 2-D
kernels lintable (``tests/fixtures/deep/clean_subcomm.py`` pins the
behavior).  The factory call itself remains a world collective site, and
subgroup-internal consistency is enforced at runtime by the verifier.

Findings carry a rule id, a precise ``path:line:col`` span, and honor
``# spmdlint: disable[=SPMD001[,SPMD002]]`` on the flagged line (or
``# spmdlint: disable-file`` anywhere in the file).
"""

from __future__ import annotations

import ast
import json
import re
from collections import Counter
from dataclasses import asdict
from pathlib import Path
from typing import Iterable, Sequence

from ._astutil import (
    RANK_DEPENDENT,
    RANK_LOCAL,
    REPLICATED,
    _SCOPE_BARRIERS,
    Finding,
    _classify,
    _collective_op,
    _Env,
    _final_identifier,
    _fn_params,
    _infer_env,
    _is_comm_name,
    _is_subcomm_name,
    _is_subcomm_receiver,
    _subcomm_names,
    _target_names,
    _walk_in_scope,
)
from .distcheck import DIST_RULES, PERF_RULES, lint_distribution
from .picklecheck import PORTABILITY_RULES
from .racecheck import OWNERSHIP_RULES, lint_ownership

__all__ = ["Finding", "RULES", "SCHEDULE_RULES", "OWNERSHIP_RULES",
           "DEEP_RULES", "PORTABILITY_RULES", "DIST_RULES", "PERF_RULES",
           "RULE_DOCS", "RULE_FIXES", "lint_source", "lint_file",
           "lint_paths", "iter_python_files",
           "render_text", "render_json", "render_github", "render_sarif",
           "suppression_hint"]

# ---------------------------------------------------------------------------
# rule catalog
# ---------------------------------------------------------------------------
#: Collective-*schedule* rules implemented by this module.
SCHEDULE_RULES: dict[str, str] = {
    "SPMD001": "rank-divergent collective: the arms of a rank-dependent "
               "branch issue different collectives",
    "SPMD002": "conditional early exit (return/raise/continue/break) under "
               "a rank-dependent or rank-local condition skips later "
               "collectives",
    "SPMD003": "collective inside a loop whose trip count is not derived "
               "from a replicated value (allreduce/bcast result, argument, "
               "or constant)",
    "SPMD004": "object-pickling collective on a hot path (inside a loop) "
               "where a buffer collective exists",
    "SPMD005": "reduction input built from unordered set iteration "
               "(ordering is not deterministic across ranks)",
}

#: Interprocedural rules implemented by :mod:`.deep` (``--deep`` only).
DEEP_RULES: dict[str, str] = {
    "SPMD009": "collective (transitively, through helper calls) reachable "
               "only under rank-dependent control flow: some ranks issue "
               "it, others never do",
    "SPMD010": "rank-dependent value passed into a parameter the callee "
               "uses to gate or size a collective",
    "SPMD011": "conflicting transitive collective sequences on the two "
               "paths to the same join point",
}

#: Every rule the ``repro check`` pass knows: schedule rules (this module),
#: buffer-ownership rules (:mod:`.racecheck`), interprocedural rules
#: (:mod:`.deep`), backend-portability rules (:mod:`.picklecheck`), and
#: distribution-state + perf rules (:mod:`.distcheck`).
RULES: dict[str, str] = {**SCHEDULE_RULES, **OWNERSHIP_RULES,
                         **DEEP_RULES, **PORTABILITY_RULES,
                         **DIST_RULES, **PERF_RULES}

#: Where each rule is documented (repo-relative anchor into DESIGN.md).
RULE_DOCS: dict[str, str] = {
    **{rule: "DESIGN.md#8-spmd-correctness-suite"
       for rule in SCHEDULE_RULES},
    **{rule: "DESIGN.md#9-buffer-ownership-model"
       for rule in OWNERSHIP_RULES},
    **{rule: "DESIGN.md#13-whole-program-spmd-analysis"
       for rule in {**DEEP_RULES, **PORTABILITY_RULES}},
    **{rule: "DESIGN.md#14-distribution-state-abstract-interpretation"
       for rule in {**DIST_RULES, **PERF_RULES}},
}

#: One-line fix advice per rule (rendered into SARIF rule help and README).
RULE_FIXES: dict[str, str] = {
    "SPMD001": "issue the same collective schedule on both arms (non-roots "
               "pass None/empty payloads) instead of branching the schedule",
    "SPMD002": "hoist the exit decision into a replicated value (allreduce "
               "the predicate) so every rank exits together",
    "SPMD003": "derive the trip count from an allreduce/bcast result so "
               "every rank runs the same number of iterations",
    "SPMD004": "switch to the buffer collective (gatherv/allgatherv/"
               "alltoallv) on the hot path",
    "SPMD005": "sort the set before reducing (len/min/max are fine as-is)",
    "SPMD006": "take comm.own(payload) (or drop copy=False) before writing",
    "SPMD007": "mutate a copy, or re-bind the name to fresh data before "
               "writing the published buffer",
    "SPMD008": "store comm.own(payload) / payload.copy() instead of the "
               "borrow",
    "SPMD009": "call the helper on every rank (it can no-op internally via "
               "replicated state) so the schedule stays uniform",
    "SPMD010": "replicate the value first (allreduce/bcast it) before "
               "passing it to a parameter that gates or sizes collectives",
    "SPMD011": "make both paths issue the same transitive collective "
               "sequence, or hoist the collectives above the branch",
    "SPMD012": "move the callable to module level and pass data through "
               "picklable arguments (see DESIGN.md §12 fn specs)",
    "SPMD013": "translate between index spaces at the boundary: "
               "map.get(gids) for global -> local, unmap[lids] for "
               "local -> global (--fix wraps the mechanical case)",
    "SPMD014": "insert a halo exchange between the local write and the "
               "ghost read (or read before writing)",
    "SPMD015": "reduce the owned slice x[:n_loc] (ghosts are counted by "
               "their owner rank)",
    "SPMD016": "size/type the reduction buffer from a replicated value "
               "(n_global, comm.size, an allreduce result)",
    "PERF001": "hoist the collective above the loop (--fix does this "
               "mechanically when the result name is loop-private)",
    "PERF002": "send the un-split payload through alltoallv_flat(payload, "
               "counts) or a persistent AlltoallvPlan",
    "PERF003": "allocate the buffer once before the loop and reuse it "
               "(--fix hoists np.empty allocations)",
}


def suppression_hint(rule: str) -> str:
    """The inline comment that suppresses ``rule`` on the flagged line."""
    return f"# spmdlint: disable={rule}"


#: Object (pickling) collectives and their buffer replacements.
BUFFER_ALTERNATIVE = {
    "gather": "gatherv",
    "allgather": "allgatherv",
    "alltoall": "alltoallv",
    "bcast": "allgatherv (all ranks contribute, non-roots an empty buffer)",
}

#: Reduction collectives (checked by SPMD005).
REDUCTIONS = frozenset(
    {"allreduce", "reduce", "reduce_scatter", "scan", "exscan"})


# ---------------------------------------------------------------------------
# suppression comments
# ---------------------------------------------------------------------------
_DISABLE_FILE_RE = re.compile(
    r"#\s*spmdlint:\s*disable-file(?:=(?P<rules>[A-Za-z0-9_, ]+))?")
_DISABLE_RE = re.compile(
    r"#\s*spmdlint:\s*disable(?!-)(?:=(?P<rules>[A-Za-z0-9_, ]+))?")


def _parse_suppressions(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """Per-line and file-wide suppression sets ("ALL" disables every rule)."""
    per_line: dict[int, set[str]] = {}
    file_wide: set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "spmdlint" not in line:
            continue
        m = _DISABLE_FILE_RE.search(line)
        if m:
            rules = m.group("rules")
            file_wide |= ({r.strip() for r in rules.split(",") if r.strip()}
                          if rules else {"ALL"})
            continue
        m = _DISABLE_RE.search(line)
        if m:
            rules = m.group("rules")
            per_line[lineno] = ({r.strip() for r in rules.split(",")
                                 if r.strip()} if rules else {"ALL"})
    return per_line, file_wide


def apply_suppressions(findings: Iterable[Finding], source: str) -> None:
    """Mark findings muted by inline/file-wide suppression comments."""
    per_line, file_wide = _parse_suppressions(source)
    for f in findings:
        line_rules = per_line.get(f.line, set())
        if ("ALL" in file_wide or f.rule in file_wide
                or "ALL" in line_rules or f.rule in line_rules):
            f.suppressed = True


# ---------------------------------------------------------------------------
# collective-site recognition (shared primitives live in ._astutil)
# ---------------------------------------------------------------------------
def _forwards_comm(call: ast.Call,
                   subcomm_names: frozenset[str] = frozenset()) -> bool:
    """True when the call passes a *world* communicator onward.

    Forwarding only sub-communicators does not make the call a world
    schedule site: the callee's collectives are scoped to the subgroup.
    """
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        if isinstance(arg, ast.Name) and _is_comm_name(arg.id):
            if arg.id in subcomm_names or _is_subcomm_name(arg.id):
                continue
            return True
    return False


def _site_label(call: ast.Call,
                subcomm_names: frozenset[str] = frozenset()) -> str | None:
    """Schedule label of a call: a collective op or a comm-forwarding call.

    Collectives issued *on* a sub-communicator are not world sites (the
    factory call itself — ``comm.split``/``rows``/``cols`` — still is).
    """
    op = _collective_op(call)
    if op is not None:
        if _is_subcomm_receiver(call, subcomm_names):
            return None
        return op
    if _forwards_comm(call, subcomm_names):
        ident = _final_identifier(call.func)
        return f"call:{ident or '<dynamic>'}"
    return None


# ---------------------------------------------------------------------------
# the analyzer
# ---------------------------------------------------------------------------
class _FunctionLinter:
    """Applies every rule to one function scope.

    The deep pass (:mod:`.deep`) subclasses this: ``_extra_site_label``
    turns calls to known collective-issuing helpers into schedule sites,
    and ``_call_level`` classifies calls to summarized functions — with
    both hooks inert, the linter is exactly the intraprocedural PR-2 pass.
    """

    def __init__(self, fn: ast.FunctionDef | ast.AsyncFunctionDef,
                 path: str, select: frozenset[str]):
        self.fn = fn
        self.path = path
        self.select = select
        self.subcomm_names = _subcomm_names(fn)
        self.env = _infer_env(fn, _fn_params(fn),
                              call_level=self._call_level)
        self.sites = self._sites_in(fn)
        self.set_names = self._infer_set_names(fn)
        self.findings: list[Finding] = []

    # -- deep-pass hooks ----------------------------------------------------
    def _extra_site_label(self, call: ast.Call) -> str | None:
        """Label calls the shallow pass cannot see as sites (deep only)."""
        return None

    def _call_level(self, call: ast.Call, env: _Env) -> int | None:
        """Refined lattice level of a call result (deep only)."""
        return None

    def _site_label(self, call: ast.Call) -> str | None:
        label = _site_label(call, self.subcomm_names)
        if label is not None:
            return label
        return self._extra_site_label(call)

    def _sites_in(self, node: ast.AST) -> list[tuple[str, ast.Call]]:
        """All collective sites (direct and indirect) in one scope subtree."""
        out = []
        for child in _walk_in_scope(node):
            if isinstance(child, ast.Call):
                label = self._site_label(child)
                if label is not None:
                    out.append((label, child))
        return out

    def _infer_set_names(self, fn: ast.AST) -> set[str]:
        """Names bound (directly or transitively) to unordered sets."""
        names: set[str] = set()
        for _ in range(4):
            before = len(names)
            for node in _walk_in_scope(fn):
                if (isinstance(node, ast.Assign)
                        and self._has_unordered_input(node.value, names)):
                    for tgt in node.targets:
                        names.update(_target_names(tgt))
                elif (isinstance(node, ast.AnnAssign)
                        and node.value is not None
                        and self._has_unordered_input(node.value, names)):
                    names.update(_target_names(node.target))
            if len(names) == before:
                break
        return names

    def run(self) -> list[Finding]:
        if not self.sites:
            return []  # not an SPMD function: no collectives at all
        self._visit_block(self.fn.body, loops=[], cond=None)
        return self.findings

    # -- helpers -----------------------------------------------------------
    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        if rule not in self.select:
            return
        self.findings.append(Finding(
            rule=rule, message=message, path=self.path,
            line=node.lineno, col=node.col_offset + 1,
            function=self.fn.name))

    def _sites_after(self, node: ast.stmt) -> list[str]:
        end = getattr(node, "end_lineno", node.lineno)
        return [label for label, call in self.sites if call.lineno > end]

    def _level(self, expr: ast.AST) -> int:
        return _classify(expr, self.env)

    # -- statement walk ----------------------------------------------------
    # ``cond`` carries the strongest divergent guard enclosing the current
    # statement ("rank-dependent" > "rank-local" > None); Continue/Break are
    # checked here, in the main walk, so they bind to the *innermost* loop.
    def _visit_block(self, body: Sequence[ast.stmt], loops: list[ast.stmt],
                     cond: str | None) -> None:
        for stmt in body:
            self._visit_stmt(stmt, loops, cond)

    def _visit_stmt(self, stmt: ast.stmt, loops: list[ast.stmt],
                    cond: str | None) -> None:
        if isinstance(stmt, _SCOPE_BARRIERS):
            return  # nested scopes are linted as their own functions
        if isinstance(stmt, ast.If):
            level = self._level(stmt.test)
            self._check_branch(stmt, level)
            inner = cond
            if level == RANK_DEPENDENT:
                inner = "rank-dependent"
            elif level == RANK_LOCAL and cond != "rank-dependent":
                inner = "rank-local"
            self._visit_block(stmt.body, loops, inner)
            self._visit_block(stmt.orelse, loops, inner)
        elif isinstance(stmt, (ast.While, ast.For)):
            self._check_loop(stmt)
            self._visit_block(stmt.body, loops + [stmt], cond)
            self._visit_block(stmt.orelse, loops, cond)
        elif isinstance(stmt, (ast.Return, ast.Raise)):
            if cond is not None:
                self._check_early_exit(stmt, cond)
        elif isinstance(stmt, (ast.Continue, ast.Break)):
            if cond is not None and loops:
                self._check_loop_exit(stmt, cond, loops[-1])
        elif isinstance(stmt, ast.Try):
            self._visit_block(stmt.body, loops, cond)
            for handler in stmt.handlers:
                self._visit_block(handler.body, loops, cond)
            self._visit_block(stmt.orelse, loops, cond)
            self._visit_block(stmt.finalbody, loops, cond)
        elif isinstance(stmt, ast.With):
            self._visit_block(stmt.body, loops, cond)
        # expression-level rules apply to every statement uniformly
        self._check_calls(stmt, loops)

    # -- SPMD001 -----------------------------------------------------------
    def _check_branch(self, stmt: ast.If, level: int) -> None:
        if level != RANK_DEPENDENT:
            return
        body_ops = Counter(
            label for s in stmt.body for label, _ in self._sites_in(s))
        else_ops = Counter(
            label for s in stmt.orelse for label, _ in self._sites_in(s))
        if body_ops != else_ops:
            diff = sorted((body_ops - else_ops) + (else_ops - body_ops))
            self._emit(
                "SPMD001", stmt,
                f"rank-dependent branch issues unmatched collectives "
                f"({', '.join(diff)}): every rank must run the same "
                f"schedule on both arms")

    # -- SPMD002 -----------------------------------------------------------
    def _check_early_exit(self, stmt: ast.stmt, cond: str) -> None:
        later = self._sites_after(stmt)
        if later:
            kind = "return" if isinstance(stmt, ast.Return) else "raise"
            self._emit(
                "SPMD002", stmt,
                f"early {kind} under a {cond} condition skips "
                f"{len(later)} later collective(s) "
                f"({', '.join(sorted(set(later))[:4])}): ranks that "
                f"exit here desynchronize the schedule")

    def _check_loop_exit(self, stmt: ast.stmt, cond: str,
                         loop: ast.stmt) -> None:
        loop_sites = [(label, call) for s in loop.body
                      for label, call in self._sites_in(s)]
        if isinstance(stmt, ast.Continue):
            relevant = [label for label, call in loop_sites
                        if call.lineno > stmt.lineno]
            what = "collective(s) later in the loop body"
        else:
            relevant = [label for label, _ in loop_sites]
            what = "collective(s) in the loop body"
        if relevant:
            kw = "continue" if isinstance(stmt, ast.Continue) else "break"
            self._emit(
                "SPMD002", stmt,
                f"'{kw}' under a {cond} condition skips "
                f"{len(relevant)} {what} "
                f"({', '.join(sorted(set(relevant))[:4])})")

    # -- SPMD003 -----------------------------------------------------------
    def _check_loop(self, stmt: ast.While | ast.For) -> None:
        loop_sites = [label for s in stmt.body
                      for label, _ in self._sites_in(s)]
        if not loop_sites:
            return
        driver = stmt.test if isinstance(stmt, ast.While) else stmt.iter
        level = self._loop_driver_level(driver, stmt)
        if level >= RANK_LOCAL:
            kind = "condition" if isinstance(stmt, ast.While) else "iterable"
            self._emit(
                "SPMD003", stmt,
                f"loop {kind} is not replicated across ranks but the body "
                f"issues collectives ({', '.join(sorted(set(loop_sites))[:4])}"
                f"): derive the trip count from an allreduce/bcast so every "
                f"rank runs the same number of iterations")

    def _loop_driver_level(self, driver: ast.expr,
                           loop: ast.While | ast.For) -> int:
        """Flow-refined level of a loop condition/iterable.

        The monotone environment joins every assignment a name ever
        receives, which over-taints the standard refresh idiom::

            total = <local accumulation>          # rank-local
            ...
            total = comm.allreduce(total, SUM)    # replicated again
            while total > 0: ...

        A ``while`` test is re-evaluated after each body execution, so the
        level that matters is the *last* assignment in the body (falling
        back to the last one before the loop).  A ``for`` iterable is
        evaluated once, so only pre-loop assignments count.  The lexically
        last assignment is a heuristic (a conditional reassignment could be
        skipped at runtime) — acceptable for a precision-first linter.
        """
        refined = _Env([], call_level=self._call_level)
        refined.levels = dict(self.env.levels)
        names = {n.id for n in ast.walk(driver) if isinstance(n, ast.Name)}
        for name in names:
            last: tuple[tuple[int, int], int] | None = None  # ((pri, line), lvl)
            for node in _walk_in_scope(self.fn):
                end = getattr(node, "end_lineno", None)
                if end is None:
                    continue
                in_body = node.lineno > loop.lineno and end <= (
                    getattr(loop, "end_lineno", loop.lineno))
                before = end < loop.lineno
                use_body = isinstance(loop, ast.While)
                if not (before or (use_body and in_body)):
                    continue
                bound, level = self._binding_level(node, name)
                if not bound:
                    continue
                # Body assignments dominate pre-loop ones for while tests.
                key = (1 if (use_body and in_body) else 0, end)
                if last is None or key > last[0]:
                    last = (key, level)
            if last is not None:
                refined.levels[name] = last[1]
        return _classify(driver, refined)

    def _binding_level(self, node: ast.AST, name: str) -> tuple[bool, int]:
        """Does ``node`` (re)bind ``name``, and to what lattice level?"""
        if isinstance(node, ast.Assign):
            if any(name in _target_names(t) for t in node.targets):
                return True, _classify(node.value, self.env)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if name in _target_names(node.target):
                return True, _classify(node.value, self.env)
        elif isinstance(node, ast.AugAssign):
            if name in _target_names(node.target):
                # x += rhs depends on the previous x: stay conservative.
                return True, max(_classify(node.value, self.env),
                                 self.env.get(name))
        elif isinstance(node, ast.For):
            if name in _target_names(node.target):
                return True, _classify(node.iter, self.env)
        return False, REPLICATED

    # -- SPMD004 + SPMD005 -------------------------------------------------
    def _check_calls(self, stmt: ast.stmt, loops: list[ast.stmt]) -> None:
        # Only inspect calls attached directly to this statement, not ones
        # nested in child blocks (those are visited with their own stmt).
        for node in self._direct_exprs(stmt):
            for call in [c for c in ast.walk(node)
                         if isinstance(c, ast.Call)]:
                op = _collective_op(call)
                if op is None:
                    continue
                if _is_subcomm_receiver(call, self.subcomm_names):
                    continue  # subgroup-scoped: not the world hot path
                if loops and op in BUFFER_ALTERNATIVE:
                    self._emit(
                        "SPMD004", call,
                        f"object-pickling collective '{op}' inside a loop "
                        f"serializes per call; use the buffer collective "
                        f"'{BUFFER_ALTERNATIVE[op]}' on this hot path")
                if op in REDUCTIONS and call.args:
                    if self._has_unordered_input(call.args[0],
                                                 self.set_names):
                        self._emit(
                            "SPMD005", call,
                            f"reduction '{op}' input iterates an unordered "
                            f"set; ordering differs across ranks, making "
                            f"the reduction non-deterministic — sort first")

    def _direct_exprs(self, stmt: ast.stmt) -> list[ast.expr]:
        out: list[ast.expr] = []
        for fname, value in ast.iter_fields(stmt):
            if fname in ("body", "orelse", "finalbody", "handlers"):
                continue
            if isinstance(value, ast.expr):
                out.append(value)
            elif isinstance(value, list):
                out.extend(v for v in value if isinstance(v, ast.expr))
        return out

    @classmethod
    def _has_unordered_input(cls, value: ast.AST,
                             set_names: set[str]) -> bool:
        """True if the expression iterates an unordered set.

        ``len``/``sorted``/``min``/``max`` are order-insensitive sinks, so
        sets flowing only through them are fine.
        """
        if isinstance(value, (ast.Set, ast.SetComp)):
            return True
        if isinstance(value, ast.Name):
            return value.id in set_names
        if isinstance(value, ast.Call):
            fname = (value.func.id if isinstance(value.func, ast.Name)
                     else None)
            if fname in ("set", "frozenset"):
                return True
            if fname in ("len", "sorted", "min", "max"):
                return False
        return any(cls._has_unordered_input(child, set_names)
                   for child in ast.iter_child_nodes(value))


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------
def lint_source(source: str, path: str = "<string>",
                select: Iterable[str] | None = None) -> list[Finding]:
    """Lint one Python source string; returns findings (incl. suppressed)."""
    selected = frozenset(select) if select is not None else frozenset(RULES)
    tree = ast.parse(source, filename=path)
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            findings.extend(_FunctionLinter(node, path, selected).run())
    findings.extend(lint_ownership(tree, path, selected))
    findings.extend(lint_distribution(tree, path, selected, source=source))
    apply_suppressions(findings, source)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files and/or directory trees into a ``**/*.py`` file list."""
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    return files


def lint_file(path: str | Path,
              select: Iterable[str] | None = None) -> list[Finding]:
    """Lint one file."""
    p = Path(path)
    return lint_source(p.read_text(), path=str(p), select=select)


def lint_paths(paths: Sequence[str | Path],
               select: Iterable[str] | None = None) -> list[Finding]:
    """Lint files and/or directory trees (``**/*.py``)."""
    findings: list[Finding] = []
    for f in iter_python_files(paths):
        findings.extend(lint_file(f, select=select))
    return findings


def render_text(findings: Sequence[Finding],
                show_suppressed: bool = False) -> str:
    """Human-readable report (one line per finding + a summary line)."""
    active = [f for f in findings if not f.suppressed and not f.baselined]
    muted = [f for f in findings if f.suppressed or f.baselined]
    lines = [f.format() for f in active]
    if show_suppressed:
        lines += [f.format() for f in muted]
    n_supp = sum(1 for f in findings if f.suppressed)
    n_base = sum(1 for f in findings if f.baselined and not f.suppressed)
    tail = f"spmdlint: {len(active)} finding(s), {n_supp} suppressed"
    if n_base:
        tail += f", {n_base} baselined"
    lines.append(tail)
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report: rule counts plus every finding.

    Each finding carries its rule's documentation anchor (``doc``) and the
    exact inline comment that would suppress it (``suppress``), so CI
    consumers can surface actionable context without a rule lookup table.
    """
    active = [f for f in findings if not f.suppressed and not f.baselined]
    counts = Counter(f.rule for f in active)
    payload = {
        "findings": [
            {**asdict(f),
             "doc": RULE_DOCS.get(f.rule, "DESIGN.md"),
             "suppress": suppression_hint(f.rule)}
            for f in findings
        ],
        "counts": {rule: counts.get(rule, 0) for rule in sorted(RULES)},
        "total": len(active),
        "suppressed": sum(1 for f in findings if f.suppressed),
        "baselined": sum(1 for f in findings
                         if f.baselined and not f.suppressed),
    }
    return json.dumps(payload, indent=2)


def render_github(findings: Sequence[Finding]) -> str:
    """GitHub Actions workflow annotations (``::error file=...``).

    One ``::error`` command per unsuppressed finding; GitHub renders them
    inline on the PR diff.  Messages are single-line by construction.
    """
    lines = []
    for f in findings:
        if f.suppressed or f.baselined:
            continue
        lines.append(
            f"::error file={f.path},line={f.line},col={f.col},"
            f"title={f.rule} [{f.function}]::{f.message} "
            f"(suppress: {suppression_hint(f.rule)}; "
            f"docs: {RULE_DOCS.get(f.rule, 'DESIGN.md')})")
    return "\n".join(lines)


#: SARIF 2.1.0 schema location (the format GitHub code scanning ingests).
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def render_sarif(findings: Sequence[Finding]) -> str:
    """SARIF 2.1.0 report (GitHub code-scanning upload format).

    Every catalog rule is described in the tool component (id, short
    description, fix advice, doc anchor); each finding becomes a result
    with a precise region.  Suppressed and baselined findings are carried
    with a ``suppressions`` entry so code scanning shows them as muted
    instead of new.
    """
    rules = [
        {
            "id": rule,
            "shortDescription": {"text": RULES[rule]},
            "help": {"text": f"Fix: {RULE_FIXES.get(rule, 'see docs')}. "
                             f"Docs: {RULE_DOCS.get(rule, 'DESIGN.md')}"},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in sorted(RULES)
    ]
    rule_index = {r["id"]: i for i, r in enumerate(rules)}
    results = []
    for f in findings:
        result = {
            "ruleId": f.rule,
            "ruleIndex": rule_index.get(f.rule, -1),
            "level": "error",
            "message": {"text": f"[{f.function}] {f.message}"},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": str(f.path).replace("\\", "/"),
                                         "uriBaseId": "SRCROOT"},
                    "region": {"startLine": f.line, "startColumn": f.col},
                },
            }],
        }
        if f.suppressed or f.baselined:
            kind = "inSource" if f.suppressed else "external"
            just = ("inline spmdlint: disable comment" if f.suppressed
                    else "grandfathered by .spmdlint-baseline.json")
            result["suppressions"] = [
                {"kind": kind, "justification": just}]
        if f.fix is not None and f.fix.get("kind") == "replace":
            # Single-region text edits (SPMD013 unmap-wraps, PERF002
            # flat-path substitutions) surface as SARIF fixes; code
            # scanning renders them as suggested changes.  Hoist fixes
            # need the moved source text and are applied by ``--fix``.
            result["fixes"] = [{
                "description": {
                    "text": RULE_FIXES.get(f.rule, "apply the edit")},
                "artifactChanges": [{
                    "artifactLocation": {
                        "uri": str(f.path).replace("\\", "/"),
                        "uriBaseId": "SRCROOT"},
                    "replacements": [{
                        "deletedRegion": {
                            "startLine": f.fix["line"],
                            "startColumn": f.fix["col"] + 1,
                            "endLine": f.fix["line"],
                            "endColumn": f.fix["end_col"] + 1},
                        "insertedContent": {"text": f.fix["text"]},
                    }],
                }],
            }]
        results.append(result)
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "spmdlint",
                    "informationUri":
                        "https://github.com/repro/repro#static-analysis",
                    "rules": rules,
                },
            },
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
        }],
    }
    return json.dumps(payload, indent=2)
