"""AST-based SPMD collective-schedule linter.

Model
-----
The analyzer treats every function that issues a collective — a call
``X.<op>(...)`` whose receiver's final identifier contains ``comm`` — as an
SPMD function, and classifies every expression into a three-level lattice:

``REPLICATED``
    provably identical on all ranks under the codebase's conventions:
    constants, function arguments (``run_spmd`` passes the same arguments
    to every rank), module-level names, and the results of uniform-result
    collectives (``allreduce``, ``bcast``, ``allgather``, ``allgatherv``);
``RANK_LOCAL``
    potentially different per rank: results of per-rank collectives
    (``alltoallv``, ``gather``, ``scan``, …) and anything derived from them;
``RANK_DEPENDENT``
    explicitly keyed on the rank id (``comm.rank`` or any ``.rank``
    attribute) and anything derived from it.

The heuristic is deliberately precision-first (a lint finding should almost
always be real): attributes of parameters (``g.n_global``) are assumed
replicated, so rank-locality enters only through ``comm.rank`` and the
per-rank collectives.  Calls that *forward* the communicator
(``helper(comm, …)``) count as collective sites for schedule purposes.

Findings carry a rule id, a precise ``path:line:col`` span, and honor
``# spmdlint: disable[=SPMD001[,SPMD002]]`` on the flagged line (or
``# spmdlint: disable-file`` anywhere in the file).
"""

from __future__ import annotations

import ast
import json
import re
from collections import Counter
from dataclasses import asdict
from pathlib import Path
from typing import Iterable, Sequence

from ._astutil import (
    _SCOPE_BARRIERS,
    COLLECTIVES,
    Finding,
    _collective_op,
    _final_identifier,
    _is_comm_expr,
    _target_names,
    _walk_in_scope,
)
from .racecheck import OWNERSHIP_RULES, lint_ownership

__all__ = ["Finding", "RULES", "SCHEDULE_RULES", "OWNERSHIP_RULES",
           "RULE_DOCS", "lint_source", "lint_file", "lint_paths",
           "render_text", "render_json", "render_github",
           "suppression_hint"]

# ---------------------------------------------------------------------------
# rule catalog
# ---------------------------------------------------------------------------
#: Collective-*schedule* rules implemented by this module.
SCHEDULE_RULES: dict[str, str] = {
    "SPMD001": "rank-divergent collective: the arms of a rank-dependent "
               "branch issue different collectives",
    "SPMD002": "conditional early exit (return/raise/continue/break) under "
               "a rank-dependent or rank-local condition skips later "
               "collectives",
    "SPMD003": "collective inside a loop whose trip count is not derived "
               "from a replicated value (allreduce/bcast result, argument, "
               "or constant)",
    "SPMD004": "object-pickling collective on a hot path (inside a loop) "
               "where a buffer collective exists",
    "SPMD005": "reduction input built from unordered set iteration "
               "(ordering is not deterministic across ranks)",
}

#: Every rule the ``repro check`` pass knows: schedule rules (this module)
#: plus buffer-ownership rules (:mod:`.racecheck`).
RULES: dict[str, str] = {**SCHEDULE_RULES, **OWNERSHIP_RULES}

#: Where each rule is documented (repo-relative anchor into DESIGN.md).
RULE_DOCS: dict[str, str] = {
    **{rule: "DESIGN.md#8-spmd-correctness-suite"
       for rule in SCHEDULE_RULES},
    **{rule: "DESIGN.md#9-buffer-ownership-model"
       for rule in OWNERSHIP_RULES},
}


def suppression_hint(rule: str) -> str:
    """The inline comment that suppresses ``rule`` on the flagged line."""
    return f"# spmdlint: disable={rule}"

#: Collectives whose result is identical on every rank.
UNIFORM_RESULT = frozenset(
    {"allreduce", "bcast", "allgather", "allgatherv", "barrier"})

#: Object (pickling) collectives and their buffer replacements.
BUFFER_ALTERNATIVE = {
    "gather": "gatherv",
    "allgather": "allgatherv",
    "alltoall": "alltoallv",
    "bcast": "allgatherv (all ranks contribute, non-roots an empty buffer)",
}

#: Reduction collectives (checked by SPMD005).
REDUCTIONS = frozenset(
    {"allreduce", "reduce", "reduce_scatter", "scan", "exscan"})

# Expression classification lattice.
REPLICATED, RANK_LOCAL, RANK_DEPENDENT = 0, 1, 2


# ---------------------------------------------------------------------------
# suppression comments
# ---------------------------------------------------------------------------
_DISABLE_FILE_RE = re.compile(
    r"#\s*spmdlint:\s*disable-file(?:=(?P<rules>[A-Za-z0-9_, ]+))?")
_DISABLE_RE = re.compile(
    r"#\s*spmdlint:\s*disable(?!-)(?:=(?P<rules>[A-Za-z0-9_, ]+))?")


def _parse_suppressions(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """Per-line and file-wide suppression sets ("ALL" disables every rule)."""
    per_line: dict[int, set[str]] = {}
    file_wide: set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "spmdlint" not in line:
            continue
        m = _DISABLE_FILE_RE.search(line)
        if m:
            rules = m.group("rules")
            file_wide |= ({r.strip() for r in rules.split(",") if r.strip()}
                          if rules else {"ALL"})
            continue
        m = _DISABLE_RE.search(line)
        if m:
            rules = m.group("rules")
            per_line[lineno] = ({r.strip() for r in rules.split(",")
                                 if r.strip()} if rules else {"ALL"})
    return per_line, file_wide


# ---------------------------------------------------------------------------
# collective-site recognition (shared primitives live in ._astutil)
# ---------------------------------------------------------------------------
def _forwards_comm(call: ast.Call) -> bool:
    """True when the call passes a communicator onward (indirect site)."""
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        if isinstance(arg, ast.Name) and "comm" in arg.id.lower():
            return True
    return False


def _site_label(call: ast.Call) -> str | None:
    """Schedule label of a call: a collective op or a comm-forwarding call."""
    op = _collective_op(call)
    if op is not None:
        return op
    if _forwards_comm(call):
        ident = _final_identifier(call.func)
        return f"call:{ident or '<dynamic>'}"
    return None


def _sites_in(node: ast.AST) -> list[tuple[str, ast.Call]]:
    """All collective sites (direct and indirect) inside one scope subtree."""
    out = []
    for child in _walk_in_scope(node):
        if isinstance(child, ast.Call):
            label = _site_label(child)
            if label is not None:
                out.append((label, child))
    return out


# ---------------------------------------------------------------------------
# replication classification
# ---------------------------------------------------------------------------
class _Env:
    """Name -> lattice level for one function scope (default: replicated)."""

    def __init__(self, params: Sequence[str]):
        self.levels: dict[str, int] = {}
        for p in params:
            # A parameter literally named "rank" carries the rank id.
            self.levels[p] = RANK_DEPENDENT if p == "rank" else REPLICATED

    def get(self, name: str) -> int:
        return self.levels.get(name, REPLICATED)

    def join(self, name: str, level: int) -> None:
        self.levels[name] = max(self.levels.get(name, REPLICATED), level)


def _classify(node: ast.AST | None, env: _Env) -> int:
    """Lattice level of an expression (monotone max over sub-expressions)."""
    if node is None:
        return REPLICATED
    if isinstance(node, ast.Constant):
        return REPLICATED
    if isinstance(node, ast.Name):
        return env.get(node.id)
    if isinstance(node, ast.Attribute):
        if node.attr == "rank":
            return RANK_DEPENDENT
        if node.attr == "size" and _is_comm_expr(node.value):
            return REPLICATED
        return _classify(node.value, env)
    if isinstance(node, ast.Call):
        op = _collective_op(node)
        if op is not None:
            # Replicated results stay replicated regardless of their inputs.
            return (REPLICATED if op in UNIFORM_RESULT else RANK_LOCAL)
        level = _classify(node.func, env)
        for arg in node.args:
            level = max(level, _classify(arg, env))
        for kw in node.keywords:
            level = max(level, _classify(kw.value, env))
        return level
    if isinstance(node, ast.Lambda):
        return REPLICATED
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                         ast.DictComp)):
        level = REPLICATED
        for gen in node.generators:
            it_level = _classify(gen.iter, env)
            level = max(level, it_level)
            for name in _target_names(gen.target):
                env.join(name, it_level)
            for cond in gen.ifs:
                level = max(level, _classify(cond, env))
        if isinstance(node, ast.DictComp):
            level = max(level, _classify(node.key, env),
                        _classify(node.value, env))
        else:
            level = max(level, _classify(node.elt, env))
        return level
    if isinstance(node, ast.NamedExpr):
        level = _classify(node.value, env)
        for name in _target_names(node.target):
            env.join(name, level)
        return level
    level = REPLICATED
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.expr, ast.keyword)):
            level = max(level, _classify(child, env))
    return level


def _infer_env(fn: ast.AST, params: Sequence[str]) -> _Env:
    """Fixpoint pass over assignments so taint flows through name chains."""
    env = _Env(params)
    for _ in range(8):
        before = dict(env.levels)
        for node in _walk_in_scope(fn):
            if isinstance(node, ast.Assign):
                level = _classify(node.value, env)
                for tgt in node.targets:
                    for name in _target_names(tgt):
                        env.join(name, level)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                level = _classify(node.value, env)
                for name in _target_names(node.target):
                    env.join(name, level)
            elif isinstance(node, ast.AugAssign):
                level = _classify(node.value, env)
                for name in _target_names(node.target):
                    env.join(name, level)
            elif isinstance(node, ast.For):
                level = _classify(node.iter, env)
                for name in _target_names(node.target):
                    env.join(name, level)
            elif isinstance(node, ast.withitem):
                if node.optional_vars is not None:
                    level = _classify(node.context_expr, env)
                    for name in _target_names(node.optional_vars):
                        env.join(name, level)
        if env.levels == before:
            break
    return env


# ---------------------------------------------------------------------------
# the analyzer
# ---------------------------------------------------------------------------
class _FunctionLinter:
    """Applies every rule to one function scope."""

    def __init__(self, fn: ast.FunctionDef | ast.AsyncFunctionDef,
                 path: str, select: frozenset[str]):
        self.fn = fn
        self.path = path
        self.select = select
        args = fn.args
        params = [a.arg for a in (args.posonlyargs + args.args
                                  + args.kwonlyargs)]
        if args.vararg:
            params.append(args.vararg.arg)
        if args.kwarg:
            params.append(args.kwarg.arg)
        self.env = _infer_env(fn, params)
        self.sites = _sites_in(fn)
        self.set_names = self._infer_set_names(fn)
        self.findings: list[Finding] = []

    def _infer_set_names(self, fn: ast.AST) -> set[str]:
        """Names bound (directly or transitively) to unordered sets."""
        names: set[str] = set()
        for _ in range(4):
            before = len(names)
            for node in _walk_in_scope(fn):
                if (isinstance(node, ast.Assign)
                        and self._has_unordered_input(node.value, names)):
                    for tgt in node.targets:
                        names.update(_target_names(tgt))
                elif (isinstance(node, ast.AnnAssign)
                        and node.value is not None
                        and self._has_unordered_input(node.value, names)):
                    names.update(_target_names(node.target))
            if len(names) == before:
                break
        return names

    def run(self) -> list[Finding]:
        if not self.sites:
            return []  # not an SPMD function: no collectives at all
        self._visit_block(self.fn.body, loops=[], cond=None)
        return self.findings

    # -- helpers -----------------------------------------------------------
    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        if rule not in self.select:
            return
        self.findings.append(Finding(
            rule=rule, message=message, path=self.path,
            line=node.lineno, col=node.col_offset + 1,
            function=self.fn.name))

    def _sites_after(self, node: ast.stmt) -> list[str]:
        end = getattr(node, "end_lineno", node.lineno)
        return [label for label, call in self.sites if call.lineno > end]

    def _level(self, expr: ast.AST) -> int:
        return _classify(expr, self.env)

    # -- statement walk ----------------------------------------------------
    # ``cond`` carries the strongest divergent guard enclosing the current
    # statement ("rank-dependent" > "rank-local" > None); Continue/Break are
    # checked here, in the main walk, so they bind to the *innermost* loop.
    def _visit_block(self, body: Sequence[ast.stmt], loops: list[ast.stmt],
                     cond: str | None) -> None:
        for stmt in body:
            self._visit_stmt(stmt, loops, cond)

    def _visit_stmt(self, stmt: ast.stmt, loops: list[ast.stmt],
                    cond: str | None) -> None:
        if isinstance(stmt, _SCOPE_BARRIERS):
            return  # nested scopes are linted as their own functions
        if isinstance(stmt, ast.If):
            level = self._level(stmt.test)
            self._check_branch(stmt, level)
            inner = cond
            if level == RANK_DEPENDENT:
                inner = "rank-dependent"
            elif level == RANK_LOCAL and cond != "rank-dependent":
                inner = "rank-local"
            self._visit_block(stmt.body, loops, inner)
            self._visit_block(stmt.orelse, loops, inner)
        elif isinstance(stmt, (ast.While, ast.For)):
            self._check_loop(stmt)
            self._visit_block(stmt.body, loops + [stmt], cond)
            self._visit_block(stmt.orelse, loops, cond)
        elif isinstance(stmt, (ast.Return, ast.Raise)):
            if cond is not None:
                self._check_early_exit(stmt, cond)
        elif isinstance(stmt, (ast.Continue, ast.Break)):
            if cond is not None and loops:
                self._check_loop_exit(stmt, cond, loops[-1])
        elif isinstance(stmt, ast.Try):
            self._visit_block(stmt.body, loops, cond)
            for handler in stmt.handlers:
                self._visit_block(handler.body, loops, cond)
            self._visit_block(stmt.orelse, loops, cond)
            self._visit_block(stmt.finalbody, loops, cond)
        elif isinstance(stmt, ast.With):
            self._visit_block(stmt.body, loops, cond)
        # expression-level rules apply to every statement uniformly
        self._check_calls(stmt, loops)

    # -- SPMD001 -----------------------------------------------------------
    def _check_branch(self, stmt: ast.If, level: int) -> None:
        if level != RANK_DEPENDENT:
            return
        body_ops = Counter(
            label for s in stmt.body for label, _ in _sites_in(s))
        else_ops = Counter(
            label for s in stmt.orelse for label, _ in _sites_in(s))
        if body_ops != else_ops:
            diff = sorted((body_ops - else_ops) + (else_ops - body_ops))
            self._emit(
                "SPMD001", stmt,
                f"rank-dependent branch issues unmatched collectives "
                f"({', '.join(diff)}): every rank must run the same "
                f"schedule on both arms")

    # -- SPMD002 -----------------------------------------------------------
    def _check_early_exit(self, stmt: ast.stmt, cond: str) -> None:
        later = self._sites_after(stmt)
        if later:
            kind = "return" if isinstance(stmt, ast.Return) else "raise"
            self._emit(
                "SPMD002", stmt,
                f"early {kind} under a {cond} condition skips "
                f"{len(later)} later collective(s) "
                f"({', '.join(sorted(set(later))[:4])}): ranks that "
                f"exit here desynchronize the schedule")

    def _check_loop_exit(self, stmt: ast.stmt, cond: str,
                         loop: ast.stmt) -> None:
        loop_sites = [(label, call) for s in loop.body
                      for label, call in _sites_in(s)]
        if isinstance(stmt, ast.Continue):
            relevant = [label for label, call in loop_sites
                        if call.lineno > stmt.lineno]
            what = "collective(s) later in the loop body"
        else:
            relevant = [label for label, _ in loop_sites]
            what = "collective(s) in the loop body"
        if relevant:
            kw = "continue" if isinstance(stmt, ast.Continue) else "break"
            self._emit(
                "SPMD002", stmt,
                f"'{kw}' under a {cond} condition skips "
                f"{len(relevant)} {what} "
                f"({', '.join(sorted(set(relevant))[:4])})")

    # -- SPMD003 -----------------------------------------------------------
    def _check_loop(self, stmt: ast.While | ast.For) -> None:
        loop_sites = [label for s in stmt.body for label, _ in _sites_in(s)]
        if not loop_sites:
            return
        driver = stmt.test if isinstance(stmt, ast.While) else stmt.iter
        level = self._loop_driver_level(driver, stmt)
        if level >= RANK_LOCAL:
            kind = "condition" if isinstance(stmt, ast.While) else "iterable"
            self._emit(
                "SPMD003", stmt,
                f"loop {kind} is not replicated across ranks but the body "
                f"issues collectives ({', '.join(sorted(set(loop_sites))[:4])}"
                f"): derive the trip count from an allreduce/bcast so every "
                f"rank runs the same number of iterations")

    def _loop_driver_level(self, driver: ast.expr,
                           loop: ast.While | ast.For) -> int:
        """Flow-refined level of a loop condition/iterable.

        The monotone environment joins every assignment a name ever
        receives, which over-taints the standard refresh idiom::

            total = <local accumulation>          # rank-local
            ...
            total = comm.allreduce(total, SUM)    # replicated again
            while total > 0: ...

        A ``while`` test is re-evaluated after each body execution, so the
        level that matters is the *last* assignment in the body (falling
        back to the last one before the loop).  A ``for`` iterable is
        evaluated once, so only pre-loop assignments count.  The lexically
        last assignment is a heuristic (a conditional reassignment could be
        skipped at runtime) — acceptable for a precision-first linter.
        """
        refined = _Env([])
        refined.levels = dict(self.env.levels)
        names = {n.id for n in ast.walk(driver) if isinstance(n, ast.Name)}
        for name in names:
            last: tuple[tuple[int, int], int] | None = None  # ((pri, line), lvl)
            for node in _walk_in_scope(self.fn):
                end = getattr(node, "end_lineno", None)
                if end is None:
                    continue
                in_body = node.lineno > loop.lineno and end <= (
                    getattr(loop, "end_lineno", loop.lineno))
                before = end < loop.lineno
                use_body = isinstance(loop, ast.While)
                if not (before or (use_body and in_body)):
                    continue
                bound, level = self._binding_level(node, name)
                if not bound:
                    continue
                # Body assignments dominate pre-loop ones for while tests.
                key = (1 if (use_body and in_body) else 0, end)
                if last is None or key > last[0]:
                    last = (key, level)
            if last is not None:
                refined.levels[name] = last[1]
        return _classify(driver, refined)

    def _binding_level(self, node: ast.AST, name: str) -> tuple[bool, int]:
        """Does ``node`` (re)bind ``name``, and to what lattice level?"""
        if isinstance(node, ast.Assign):
            if any(name in _target_names(t) for t in node.targets):
                return True, _classify(node.value, self.env)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if name in _target_names(node.target):
                return True, _classify(node.value, self.env)
        elif isinstance(node, ast.AugAssign):
            if name in _target_names(node.target):
                # x += rhs depends on the previous x: stay conservative.
                return True, max(_classify(node.value, self.env),
                                 self.env.get(name))
        elif isinstance(node, ast.For):
            if name in _target_names(node.target):
                return True, _classify(node.iter, self.env)
        return False, REPLICATED

    # -- SPMD004 + SPMD005 -------------------------------------------------
    def _check_calls(self, stmt: ast.stmt, loops: list[ast.stmt]) -> None:
        # Only inspect calls attached directly to this statement, not ones
        # nested in child blocks (those are visited with their own stmt).
        for node in self._direct_exprs(stmt):
            for call in [c for c in ast.walk(node)
                         if isinstance(c, ast.Call)]:
                op = _collective_op(call)
                if op is None:
                    continue
                if loops and op in BUFFER_ALTERNATIVE:
                    self._emit(
                        "SPMD004", call,
                        f"object-pickling collective '{op}' inside a loop "
                        f"serializes per call; use the buffer collective "
                        f"'{BUFFER_ALTERNATIVE[op]}' on this hot path")
                if op in REDUCTIONS and call.args:
                    if self._has_unordered_input(call.args[0],
                                                 self.set_names):
                        self._emit(
                            "SPMD005", call,
                            f"reduction '{op}' input iterates an unordered "
                            f"set; ordering differs across ranks, making "
                            f"the reduction non-deterministic — sort first")

    def _direct_exprs(self, stmt: ast.stmt) -> list[ast.expr]:
        out: list[ast.expr] = []
        for fname, value in ast.iter_fields(stmt):
            if fname in ("body", "orelse", "finalbody", "handlers"):
                continue
            if isinstance(value, ast.expr):
                out.append(value)
            elif isinstance(value, list):
                out.extend(v for v in value if isinstance(v, ast.expr))
        return out

    @classmethod
    def _has_unordered_input(cls, value: ast.AST,
                             set_names: set[str]) -> bool:
        """True if the expression iterates an unordered set.

        ``len``/``sorted``/``min``/``max`` are order-insensitive sinks, so
        sets flowing only through them are fine.
        """
        if isinstance(value, (ast.Set, ast.SetComp)):
            return True
        if isinstance(value, ast.Name):
            return value.id in set_names
        if isinstance(value, ast.Call):
            fname = (value.func.id if isinstance(value.func, ast.Name)
                     else None)
            if fname in ("set", "frozenset"):
                return True
            if fname in ("len", "sorted", "min", "max"):
                return False
        return any(cls._has_unordered_input(child, set_names)
                   for child in ast.iter_child_nodes(value))


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------
def lint_source(source: str, path: str = "<string>",
                select: Iterable[str] | None = None) -> list[Finding]:
    """Lint one Python source string; returns findings (incl. suppressed)."""
    selected = frozenset(select) if select is not None else frozenset(RULES)
    tree = ast.parse(source, filename=path)
    per_line, file_wide = _parse_suppressions(source)
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            findings.extend(_FunctionLinter(node, path, selected).run())
    findings.extend(lint_ownership(tree, path, selected))
    for f in findings:
        line_rules = per_line.get(f.line, set())
        if ("ALL" in file_wide or f.rule in file_wide
                or "ALL" in line_rules or f.rule in line_rules):
            f.suppressed = True
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(path: str | Path,
              select: Iterable[str] | None = None) -> list[Finding]:
    """Lint one file."""
    p = Path(path)
    return lint_source(p.read_text(), path=str(p), select=select)


def lint_paths(paths: Sequence[str | Path],
               select: Iterable[str] | None = None) -> list[Finding]:
    """Lint files and/or directory trees (``**/*.py``)."""
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    findings: list[Finding] = []
    for f in files:
        findings.extend(lint_file(f, select=select))
    return findings


def render_text(findings: Sequence[Finding],
                show_suppressed: bool = False) -> str:
    """Human-readable report (one line per finding + a summary line)."""
    active = [f for f in findings if not f.suppressed]
    suppressed = [f for f in findings if f.suppressed]
    lines = [f.format() for f in active]
    if show_suppressed:
        lines += [f.format() for f in suppressed]
    lines.append(
        f"spmdlint: {len(active)} finding(s), {len(suppressed)} suppressed")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report: rule counts plus every finding.

    Each finding carries its rule's documentation anchor (``doc``) and the
    exact inline comment that would suppress it (``suppress``), so CI
    consumers can surface actionable context without a rule lookup table.
    """
    active = [f for f in findings if not f.suppressed]
    counts = Counter(f.rule for f in active)
    payload = {
        "findings": [
            {**asdict(f),
             "doc": RULE_DOCS.get(f.rule, "DESIGN.md"),
             "suppress": suppression_hint(f.rule)}
            for f in findings
        ],
        "counts": {rule: counts.get(rule, 0) for rule in sorted(RULES)},
        "total": len(active),
        "suppressed": sum(1 for f in findings if f.suppressed),
    }
    return json.dumps(payload, indent=2)


def render_github(findings: Sequence[Finding]) -> str:
    """GitHub Actions workflow annotations (``::error file=...``).

    One ``::error`` command per unsuppressed finding; GitHub renders them
    inline on the PR diff.  Messages are single-line by construction.
    """
    lines = []
    for f in findings:
        if f.suppressed:
            continue
        lines.append(
            f"::error file={f.path},line={f.line},col={f.col},"
            f"title={f.rule} [{f.function}]::{f.message} "
            f"(suppress: {suppression_hint(f.rule)}; "
            f"docs: {RULE_DOCS.get(f.rule, 'DESIGN.md')})")
    return "\n".join(lines)
