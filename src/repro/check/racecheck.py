"""Static buffer-ownership analysis ("racecheck"): rules SPMD006–008.

The runtime's aliasing object collectives (``bcast``/``scatter``/
``gather``/``allgather``/``alltoall``) default to ``copy=True`` and hand
every receiver a private deep copy; passing ``copy=False`` opts back into
zero-copy payload sharing, where several ranks hold references to the
*same* objects.  This module tracks those borrowed payloads through a
three-state ownership lattice:

``OWNED``
    private to this rank: fresh arrays, ``.copy()``/``comm.own()``
    results, and copy=True collective results (the default);
``ELEM_BORROWED``
    the container is fresh but its *elements* are shared — the shape of
    ``gather``/``allgather``/``alltoall`` results under ``copy=False``;
``BORROWED``
    the object itself is shared with peer ranks — ``bcast``/``scatter``
    results under ``copy=False``, and any element, view, or unpacking of
    an ``ELEM_BORROWED`` container.

A fourth per-name state — *escaped-to-shared* — records buffers this rank
*published* to a copy=False collective; mutating such a buffer before its
borrowers are done is the publish-side of the same race.

Rules (each suppressible with ``# spmdlint: disable=SPMDxxx``):

SPMD006
    in-place mutation of a borrowed payload (subscript/attribute stores,
    augmented assignment, mutating methods, ufunc ``out=``, or a module
    helper known to mutate the corresponding parameter);
SPMD007
    mutation of a buffer after publishing it to a copy=False collective
    (before re-binding the name to fresh data);
SPMD008
    storing a borrowed payload into a shared location — module globals,
    object attributes, caller-visible containers, returned result
    containers — without an owning ``.copy()`` / ``comm.own()``.

Borrow provenance is tracked through assignments, slices/views,
conditional joins, loops (two-pass, so a borrow created late in a loop
body reaches its top), and helper-function calls within the module.  The
analysis is precision-first like the schedule linter: only explicit
``copy=False`` keywords create borrows, and unknown calls are assumed to
return owned data.  The dynamic companion is
:mod:`repro.runtime.sanitize`.
"""

from __future__ import annotations

import ast
from typing import Any, Iterable

from ._astutil import (
    _SCOPE_BARRIERS,
    Finding,
    _collective_op,
    _is_comm_expr,
    _target_names,
    _walk_in_scope,
)

__all__ = ["OWNERSHIP_RULES", "lint_ownership"]

# ---------------------------------------------------------------------------
# rule catalog (merged into repro.check.RULES by spmdlint)
# ---------------------------------------------------------------------------
OWNERSHIP_RULES: dict[str, str] = {
    "SPMD006": "in-place mutation of a payload borrowed from a copy=False "
               "collective: the write aliases every rank's data",
    "SPMD007": "buffer mutated after being published to a copy=False "
               "collective: peer ranks may still be reading it",
    "SPMD008": "borrowed collective payload stored to a shared location "
               "(global/attribute/caller-visible container) without an "
               "owning copy",
}

#: Object collectives whose copy=False results alias contributor objects.
ALIASING = frozenset({"bcast", "scatter", "gather", "allgather", "alltoall"})

#: Aliasing collectives returning a fresh container of borrowed elements.
ELEMENTWISE = frozenset({"gather", "allgather", "alltoall"})

# Ownership lattice (monotone: larger = more borrowed).
OWNED, ELEM_BORROWED, BORROWED = 0, 1, 2

#: Methods that mutate their receiver in place.
_MUTATING_METHODS = frozenset({
    "sort", "fill", "put", "resize", "partition", "setflags", "setfield",
    "byteswap", "itemset", "append", "extend", "insert", "remove", "clear",
    "update", "setdefault", "pop", "popitem", "reverse",
})

#: Method calls returning views (result ownership == receiver ownership).
_VIEW_METHODS = frozenset({"reshape", "ravel", "view", "squeeze",
                           "transpose", "swapaxes"})

#: Function/method names that pass buffers through without copying.
_PASSTHROUGH_FUNCS = frozenset({"asarray", "ascontiguousarray",
                                "atleast_1d", "atleast_2d"})

#: Builtins returning a fresh container over the *same* elements.
_SHALLOW_BUILTINS = frozenset({"list", "tuple", "sorted", "reversed",
                               "dict"})


def _copy_false(call: ast.Call) -> bool:
    """True when the call passes an explicit ``copy=False`` keyword."""
    return any(kw.arg == "copy" and isinstance(kw.value, ast.Constant)
               and kw.value.value is False for kw in call.keywords)


def _peel(expr: ast.expr) -> tuple[str | None, int, bool]:
    """Reduce an lvalue/receiver to ``(base name, subscript depth, attr?)``.

    ``vals[0][1]`` -> ("vals", 2, False); ``self.cache[k]`` ->
    ("self", 1, True); a non-name base (e.g. a call) yields ``None``.
    """
    depth = 0
    has_attr = False
    node = expr
    while True:
        if isinstance(node, ast.Subscript):
            depth += 1
            node = node.value
        elif isinstance(node, ast.Attribute):
            has_attr = True
            node = node.value
        elif isinstance(node, ast.Starred):
            node = node.value
        else:
            break
    return (node.id if isinstance(node, ast.Name) else None, depth, has_attr)


# ---------------------------------------------------------------------------
# module pass 1: which parameters does each helper mutate in place?
# ---------------------------------------------------------------------------
def _stmt_mutated_names(node: ast.AST) -> list[str]:
    """Base names a single AST node mutates in place (not rebinds)."""
    out: list[str] = []
    if isinstance(node, ast.Assign):
        for t in node.targets:
            if isinstance(t, ast.Subscript):
                base, _, _ = _peel(t)
                if base:
                    out.append(base)
    elif isinstance(node, ast.AugAssign):
        base, _, _ = _peel(node.target)
        if base:
            out.append(base)
    elif isinstance(node, ast.Call):
        fn = node.func
        if isinstance(fn, ast.Attribute) and fn.attr in _MUTATING_METHODS:
            base, _, _ = _peel(fn.value)
            if base:
                out.append(base)
        for kw in node.keywords:
            if kw.arg == "out":
                targets = (kw.value.elts if isinstance(kw.value, ast.Tuple)
                           else [kw.value])
                for t in targets:
                    base, _, _ = _peel(t)
                    if base:
                        out.append(base)
    return out


def _mutation_summaries(tree: ast.Module) -> dict[str, dict[str, Any]]:
    """Per-function summary of which parameters are mutated in place.

    Used to propagate SPMD006/007 through helper calls within a module:
    ``_scale(buf, 2.0)`` is a mutation of ``buf`` if ``_scale`` writes its
    first parameter.  Aliases of a parameter inside the helper
    (``view = arr[lo:hi]; view += 1``) count as mutations of it.
    """
    out: dict[str, dict[str, Any]] = {}
    for fn in ast.walk(tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = fn.args
        positional = [a.arg for a in args.posonlyargs + args.args]
        all_params = positional + [a.arg for a in args.kwonlyargs]
        aliases: dict[str, set[str]] = {p: {p} for p in all_params}
        for _ in range(2):  # two rounds: alias-of-alias chains
            for node in _walk_in_scope(fn):
                if not isinstance(node, ast.Assign):
                    continue
                if not isinstance(node.value,
                                  (ast.Name, ast.Subscript, ast.Attribute)):
                    continue
                base, _, _ = _peel(node.value)
                if base is None:
                    continue
                for s in aliases.values():
                    if base in s:
                        for t in node.targets:
                            s.update(_target_names(t))
        mutated = set()
        for node in _walk_in_scope(fn):
            for name in _stmt_mutated_names(node):
                for p, s in aliases.items():
                    if name in s:
                        mutated.add(p)
        if mutated:
            out[fn.name] = {"positional": positional, "mutated": mutated}
    return out


# ---------------------------------------------------------------------------
# per-function ownership walk
# ---------------------------------------------------------------------------
class _OwnershipLinter:
    """Tracks the ownership lattice through one function, in source order."""

    def __init__(self, fn: ast.FunctionDef | ast.AsyncFunctionDef,
                 path: str, select: frozenset[str],
                 mutators: dict[str, dict[str, Any]]):
        self.fn = fn
        self.path = path
        self.select = select
        self.mutators = mutators
        args = fn.args
        self.params = {a.arg for a in (args.posonlyargs + args.args
                                       + args.kwonlyargs)}
        if args.vararg:
            self.params.add(args.vararg.arg)
        if args.kwarg:
            self.params.add(args.kwarg.arg)
        self.globals_ = {name for node in _walk_in_scope(fn)
                         if isinstance(node, ast.Global)
                         for name in node.names}
        self.own: dict[str, int] = {}
        self.published: dict[str, tuple[str, int]] = {}
        self.findings: list[Finding] = []
        self._emit_enabled = True

    def run(self) -> list[Finding]:
        # Borrows originate only from explicit copy=False collectives; a
        # function with none has nothing for this pass to track.
        if not any(isinstance(n, ast.Call) and _copy_false(n)
                   and _collective_op(n) in ALIASING
                   for n in _walk_in_scope(self.fn)):
            return []
        self._visit_block(self.fn.body)
        return self.findings

    # -- reporting ---------------------------------------------------------
    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        if rule in self.select and self._emit_enabled:
            self.findings.append(Finding(
                rule=rule, message=message, path=self.path,
                line=node.lineno, col=node.col_offset + 1,
                function=self.fn.name))

    def _emit_published(self, node: ast.AST, name: str) -> None:
        op, line = self.published[name]
        self._emit(
            "SPMD007", node,
            f"'{name}' was published to copy=False '{op}' (line {line}) "
            f"and is mutated while peers may still borrow it; mutate a "
            f"copy or re-bind the name to a fresh buffer first")

    def _emit_borrowed(self, node: ast.AST, name: str, how: str) -> None:
        self._emit(
            "SPMD006", node,
            f"{how} '{name}', a payload borrowed from a copy=False "
            f"collective; the write aliases every rank — take "
            f"comm.own({name}) (or drop copy=False) first")

    # -- statement walk ----------------------------------------------------
    def _visit_block(self, body: Iterable[ast.stmt]) -> None:
        for stmt in body:
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, _SCOPE_BARRIERS):
            return  # nested scopes are linted as their own functions
        if isinstance(stmt, ast.If):
            self._scan_effects(stmt.test)
            before_own, before_pub = dict(self.own), dict(self.published)
            self._visit_block(stmt.body)
            arm_own, arm_pub = self.own, self.published
            self.own, self.published = before_own, before_pub
            self._visit_block(stmt.orelse)
            for k, v in arm_own.items():  # join: max = more borrowed
                self.own[k] = max(self.own.get(k, OWNED), v)
            for k, v in arm_pub.items():
                self.published.setdefault(k, v)
        elif isinstance(stmt, (ast.For, ast.While)):
            # Two passes: the first (silent) propagates borrow states
            # created late in the body back to its top, the second reports.
            prev = self._emit_enabled
            self._emit_enabled = False
            self._loop_once(stmt)
            self._emit_enabled = prev
            self._loop_once(stmt)
            self._visit_block(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            self._visit_block(stmt.body)
            for handler in stmt.handlers:
                self._visit_block(handler.body)
            self._visit_block(stmt.orelse)
            self._visit_block(stmt.finalbody)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._scan_effects(item.context_expr)
                if item.optional_vars is not None:
                    self._store(item.optional_vars,
                                self._ownership(item.context_expr), stmt)
            self._visit_block(stmt.body)
        elif isinstance(stmt, ast.Assign):
            self._scan_effects(stmt.value)
            level = self._ownership(stmt.value)
            for target in stmt.targets:
                self._store(target, level, stmt, value=stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._scan_effects(stmt.value)
                self._store(stmt.target, self._ownership(stmt.value), stmt,
                            value=stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self._scan_effects(stmt.value)
            self._check_augassign(stmt)
        elif isinstance(stmt, ast.Expr):
            self._scan_effects(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._scan_effects(stmt.value)
                self._check_return(stmt)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._scan_effects(child)

    def _loop_once(self, stmt: ast.For | ast.While) -> None:
        if isinstance(stmt, ast.For):
            self._scan_effects(stmt.iter)
            iter_level = self._ownership(stmt.iter)
            elem = BORROWED if iter_level >= ELEM_BORROWED else OWNED
            self._store(stmt.target, elem, stmt)
        else:
            self._scan_effects(stmt.test)
        self._visit_block(stmt.body)

    # -- stores ------------------------------------------------------------
    def _store(self, target: ast.expr, level: int, stmt: ast.stmt,
               value: ast.expr | None = None) -> None:
        if isinstance(target, ast.Name):
            name = target.id
            if level >= ELEM_BORROWED and name in self.globals_:
                self._emit(
                    "SPMD008", stmt,
                    f"borrowed collective payload stored into module "
                    f"global '{name}': it outlives the borrow epoch and "
                    f"aliases peer ranks' buffers — store comm.own(...) "
                    f"instead")
            self.own[name] = level
            self.published.pop(name, None)  # re-binding ends the publish
        elif isinstance(target, (ast.Tuple, ast.List)):
            if (isinstance(value, (ast.Tuple, ast.List))
                    and len(value.elts) == len(target.elts)):
                for t, v in zip(target.elts, value.elts):
                    self._store(t, self._ownership(v), stmt, value=v)
            else:
                elem = BORROWED if level >= ELEM_BORROWED else OWNED
                for t in target.elts:
                    self._store(t, elem, stmt)
        elif isinstance(target, ast.Starred):
            self._store(target.value, level, stmt)
        elif isinstance(target, ast.Attribute):
            if level >= ELEM_BORROWED:
                self._emit(
                    "SPMD008", stmt,
                    f"borrowed collective payload stored into attribute "
                    f"'.{target.attr}': the object outlives the borrow "
                    f"epoch — store comm.own(...) / a .copy() instead")
            base, _, _ = _peel(target)
            if base is not None:
                if base in self.published:
                    self._emit_published(stmt, base)
                elif self.own.get(base, OWNED) == BORROWED:
                    self._emit_borrowed(stmt, base,
                                        "attribute write mutates")
        elif isinstance(target, ast.Subscript):
            self._subscript_store(target, level, stmt)

    def _subscript_store(self, target: ast.Subscript, level: int,
                         stmt: ast.stmt) -> None:
        base, depth, has_attr = _peel(target)
        if base is not None:
            state = self.own.get(base, OWNED)
            if base in self.published:
                self._emit_published(stmt, base)
            elif state == BORROWED or (state == ELEM_BORROWED
                                       and depth >= 2):
                self._emit_borrowed(stmt, base, "subscript write into")
            elif level >= ELEM_BORROWED and state == OWNED and (
                    has_attr or base in self.params
                    or base in self.globals_):
                # Replacing an element of an owned-but-shared container
                # (param dict, engine cache, global table) with a borrow.
                self._emit(
                    "SPMD008", stmt,
                    f"borrowed collective payload stored into "
                    f"caller-visible container '{base}': it outlives the "
                    f"borrow epoch — store comm.own(...) / a .copy() "
                    f"instead")

    def _check_augassign(self, stmt: ast.AugAssign) -> None:
        target = stmt.target
        base, depth, _ = _peel(target)
        if base is None:
            return
        state = self.own.get(base, OWNED)
        if base in self.published and isinstance(target, ast.Name):
            self._emit_published(stmt, base)
        elif base in self.published and depth >= 1:
            self._emit_published(stmt, base)
        elif state == BORROWED or (state == ELEM_BORROWED and depth >= 1):
            self._emit_borrowed(stmt, base, "augmented assignment mutates")

    def _check_return(self, stmt: ast.Return) -> None:
        value = stmt.value
        elts: list[ast.expr] = []
        if isinstance(value, ast.Dict):
            elts = [v for v in value.values if v is not None]
        elif isinstance(value, (ast.List, ast.Tuple)):
            elts = list(value.elts)
        for e in elts:
            if self._ownership(e) >= ELEM_BORROWED:
                self._emit(
                    "SPMD008", e,
                    "borrowed collective payload returned inside a result "
                    "container: the caller outlives the borrow epoch — "
                    "return comm.own(...) / .copy() data")

    # -- expression effects: publishes and call-mediated mutations ---------
    def _scan_effects(self, expr: ast.expr) -> None:
        for node in [expr, *_walk_in_scope(expr)]:
            if isinstance(node, ast.Call):
                self._call_effects(node)

    def _call_effects(self, call: ast.Call) -> None:
        op = _collective_op(call)
        if op in ALIASING and _copy_false(call):
            payload = call.args[0] if call.args else next(
                (kw.value for kw in call.keywords
                 if kw.arg in ("obj", "objs")), None)
            self._publish(payload, op, call.lineno)
            return
        fn = call.func
        if isinstance(fn, ast.Attribute) and fn.attr in _MUTATING_METHODS:
            self._flag_mutation(fn.value, call,
                                f"mutating method '.{fn.attr}()' on")
        for kw in call.keywords:
            if kw.arg == "out":
                targets = (kw.value.elts if isinstance(kw.value, ast.Tuple)
                           else [kw.value])
                for t in targets:
                    self._flag_mutation(t, call, "ufunc out= targets")
        if isinstance(fn, ast.Name) and fn.id in self.mutators:
            summary = self.mutators[fn.id]
            positional = summary["positional"]
            for i, arg in enumerate(call.args):
                if i < len(positional) and positional[i] in summary["mutated"]:
                    self._flag_mutation(
                        arg, call,
                        f"helper '{fn.id}()' mutates parameter "
                        f"'{positional[i]}', here bound to")
            for kw in call.keywords:
                if kw.arg in summary["mutated"]:
                    self._flag_mutation(
                        kw.value, call,
                        f"helper '{fn.id}()' mutates parameter "
                        f"'{kw.arg}', here bound to")

    def _flag_mutation(self, expr: ast.expr, call: ast.Call,
                       how: str) -> None:
        base, depth, _ = _peel(expr)
        if base is None:
            return
        state = self.own.get(base, OWNED)
        if base in self.published:
            self._emit_published(call, base)
        elif state == BORROWED or (state == ELEM_BORROWED and depth >= 1):
            self._emit_borrowed(call, base, how)

    def _publish(self, payload: ast.expr | None, op: str,
                 lineno: int) -> None:
        if payload is None:
            return
        if isinstance(payload, ast.Name):
            self.published[payload.id] = (op, lineno)
        elif isinstance(payload, (ast.List, ast.Tuple)):
            for e in payload.elts:
                self._publish(e, op, lineno)
        elif isinstance(payload, ast.Starred):
            self._publish(payload.value, op, lineno)

    # -- ownership classification ------------------------------------------
    def _ownership(self, expr: ast.expr | None) -> int:
        if expr is None or isinstance(expr, ast.Constant):
            return OWNED
        if isinstance(expr, ast.Name):
            return self.own.get(expr.id, OWNED)
        if isinstance(expr, ast.Attribute):
            return self._ownership(expr.value)
        if isinstance(expr, ast.Subscript):
            inner = self._ownership(expr.value)
            # An element/slice of a shared container (or a view of a
            # shared array) is itself shared.
            return BORROWED if inner > OWNED else OWNED
        if isinstance(expr, ast.Call):
            return self._call_ownership(expr)
        if isinstance(expr, ast.IfExp):
            return max(self._ownership(expr.body),
                       self._ownership(expr.orelse))
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            inner = max((self._ownership(e) for e in expr.elts),
                        default=OWNED)
            return ELEM_BORROWED if inner > OWNED else OWNED
        if isinstance(expr, ast.Dict):
            inner = max((self._ownership(v) for v in expr.values
                         if v is not None), default=OWNED)
            return ELEM_BORROWED if inner > OWNED else OWNED
        if isinstance(expr, ast.NamedExpr):
            level = self._ownership(expr.value)
            for name in _target_names(expr.target):
                self.own[name] = level
            return level
        if isinstance(expr, ast.Starred):
            return self._ownership(expr.value)
        return OWNED  # BinOp/Compare/comprehensions build fresh values

    def _call_ownership(self, call: ast.Call) -> int:
        op = _collective_op(call)
        if op is not None:
            if op in ALIASING and _copy_false(call):
                return ELEM_BORROWED if op in ELEMENTWISE else BORROWED
            return OWNED  # copy=True results and reductions are owned
        fn = call.func
        if isinstance(fn, ast.Attribute):
            if fn.attr == "own" and _is_comm_expr(fn.value):
                return OWNED  # the explicit copy-escape
            if fn.attr in _VIEW_METHODS:
                return self._ownership(fn.value)
            if fn.attr in _PASSTHROUGH_FUNCS:
                return max((self._ownership(a) for a in call.args),
                           default=OWNED)
            return OWNED  # .copy()/.astype()/reductions: owned
        if isinstance(fn, ast.Name) and fn.id in _SHALLOW_BUILTINS:
            inner = max((self._ownership(a) for a in call.args),
                        default=OWNED)
            return ELEM_BORROWED if inner > OWNED else OWNED
        return OWNED


# ---------------------------------------------------------------------------
# entry point (called by spmdlint.lint_source)
# ---------------------------------------------------------------------------
def lint_ownership(tree: ast.Module, path: str,
                   select: frozenset[str]) -> list[Finding]:
    """Run the ownership rules over every function of a parsed module."""
    mutators = _mutation_summaries(tree)
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            findings.extend(
                _OwnershipLinter(node, path, select, mutators).run())
    return findings
