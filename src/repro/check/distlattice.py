"""The distribution-state lattice for the abstract interpreter.

The distributed graph lives in *two* index spaces (DESIGN.md §14): global
vertex ids, and compact local ids where owned vertices occupy
``0..n_loc-1`` and ghosts ``n_loc..n_loc+n_gst-1``, bridged by the
``map`` (global→local hash map) / ``unmap`` (local→global array) pair.
Per-vertex data lives in arrays whose *distribution state* determines
which reductions and reads are meaningful.  This module defines the two
abstract domains the flow-sensitive pass (:mod:`.distcheck`) interprets
over, plus the purely syntactic recognizers that map source idioms onto
them:

**Index spaces** (element type of an id-carrying value)

``SPACE_GLOBAL``
    global vertex ids — results of ``unmap[...]`` / ``.to_global(...)``,
    the ``unmap`` array itself, and names/params with a ``gid``/``gids``
    segment;
``SPACE_LOCAL``
    compact local ids — results of ``map.get(...)`` / ``.to_local(...)``
    and names/params with a ``lid``/``lids`` segment;
``SPACE_OWNER``
    rank ids — results of ``owner_of(...)`` and ``ghost_tasks``;
``SPACE_UNKNOWN``
    everything else (the lattice top: no rule ever fires on it).

**Distribution states** (whole-array facts)

``DIST_GHOST``
    ghost-extended: length ``n_loc + n_gst`` (allocated from ``n_total``
    or ``n_loc + n_gst``); carries a halo freshness bit — local writes
    make the ghost slice *stale*, a halo exchange (or the callee-summary
    equivalent in deep mode) makes it *fresh* again;
``DIST_OWNER``
    owner-partitioned: length ``n_loc``, no ghost slice;
``DIST_REPL``
    replicated: full ``n_global`` length on every rank.

Both domains are deliberately *provenance-keyed*: a value only enters a
non-top state through one of the recognizers below, so every rule built
on them stays precision-first (see the shallow linters' shared charter in
:mod:`._astutil`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace

__all__ = [
    "SPACE_UNKNOWN", "SPACE_GLOBAL", "SPACE_LOCAL", "SPACE_OWNER",
    "DIST_REPL", "DIST_OWNER", "DIST_GHOST",
    "ArrayState", "DistEnv",
]

# index spaces -------------------------------------------------------------
SPACE_UNKNOWN = "unknown"
SPACE_GLOBAL = "global"
SPACE_LOCAL = "local"
SPACE_OWNER = "owner"

# distribution states ------------------------------------------------------
DIST_REPL = "replicated"
DIST_OWNER = "owner-partitioned"
DIST_GHOST = "ghost-extended"

#: Array-allocating callables recognized at construction sites.
ALLOC_FNS = frozenset({"zeros", "empty", "ones", "full"})
ALLOC_LIKE_FNS = frozenset({"zeros_like", "empty_like", "ones_like",
                            "full_like"})

#: Extent kinds a length expression can resolve to.
_EXTENTS = ("n_loc", "n_gst", "n_total", "n_global")
#: Conventional local-variable spellings of each extent.
_EXTENT_NAMES = {
    "n_loc": "n_loc", "nloc": "n_loc",
    "n_gst": "n_gst", "ngst": "n_gst", "n_ghost": "n_gst",
    "n_total": "n_total", "n_tot": "n_total", "ntot": "n_total",
    "n_global": "n_global", "n_glob": "n_global",
}


@dataclass(frozen=True)
class ArrayState:
    """Distribution state of one array-valued name."""

    dist: str                    # DIST_REPL | DIST_OWNER | DIST_GHOST
    #: Line of the local write that staled the halo; None = fresh.
    stale_line: int | None = None
    #: Line of the allocation (for messages).
    alloc_line: int = 0

    def staled(self, line: int) -> "ArrayState":
        return replace(self, stale_line=line)

    def refreshed(self) -> "ArrayState":
        return replace(self, stale_line=None)


def _segments(name: str) -> list[str]:
    return name.lower().split("_")


def seeded_space(name: str) -> str:
    """Index space implied by a name's ``_``-separated segments.

    ``gids``/``gid`` segments mean global ids, ``lids``/``lid`` local ids
    (the repository-wide naming convention, e.g. ``ghost_gids``,
    ``send_lids``); anything else is unknown.
    """
    segs = _segments(name)
    if "gids" in segs or "gid" in segs:
        return SPACE_GLOBAL
    if "lids" in segs or "lid" in segs:
        return SPACE_LOCAL
    if name == "ghost_tasks":
        return SPACE_OWNER
    return SPACE_UNKNOWN


def is_ghosty_name(name: str) -> bool:
    """Does the name denote the ghost region (``ghost`` segment)?"""
    return "ghost" in _segments(name)


def root_name(node: ast.AST) -> str | None:
    """The base ``Name`` under a chain of subscripts/attributes, if any."""
    while isinstance(node, (ast.Subscript, ast.Attribute, ast.Starred)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


class DistEnv:
    """Flow state for one function: name → space / array state / extent.

    Copied at branch points and re-joined afterwards; the join is the
    usual may-analysis one — *stale* wins on halo bits, disagreeing facts
    fall back to the top element (absent).
    """

    def __init__(self) -> None:
        self.spaces: dict[str, str] = {}
        self.arrays: dict[str, ArrayState] = {}
        self.extents: dict[str, str] = {}
        #: name -> PERF002 provenance: the payload/counts behind a
        #: list-of-arrays built with ``np.split`` (fix metadata or {}).
        self.split_lists: dict[str, dict] = {}
        #: name -> (replication level, lineno) of an ndarray allocation
        #: whose size/dtype is not replicated (SPMD016 evidence).
        self.buf_alloc: dict[str, tuple[int, int]] = {}

    def copy(self) -> "DistEnv":
        out = DistEnv()
        out.spaces = dict(self.spaces)
        out.arrays = dict(self.arrays)
        out.extents = dict(self.extents)
        out.split_lists = dict(self.split_lists)
        out.buf_alloc = dict(self.buf_alloc)
        return out

    def join(self, other: "DistEnv") -> None:
        """In-place join with the state of a sibling path."""
        for name in list(self.spaces):
            if other.spaces.get(name) != self.spaces[name]:
                del self.spaces[name]
        for name in list(self.arrays):
            theirs = other.arrays.get(name)
            mine = self.arrays[name]
            if theirs is None or theirs.dist != mine.dist:
                del self.arrays[name]
            elif theirs.stale_line is not None and mine.stale_line is None:
                self.arrays[name] = theirs  # stale wins
        for name in list(self.extents):
            if other.extents.get(name) != self.extents[name]:
                del self.extents[name]
        for name in list(self.split_lists):
            if name not in other.split_lists:
                del self.split_lists[name]
        for name in list(self.buf_alloc):
            if name not in other.buf_alloc:
                del self.buf_alloc[name]

    # -- extents -----------------------------------------------------------
    def extent_of(self, node: ast.AST | None) -> str | None:
        """Which graph extent (``n_loc``/``n_gst``/``n_total``/
        ``n_global``) a length expression denotes, if recognizable."""
        if node is None:
            return None
        if isinstance(node, ast.Attribute) and node.attr in _EXTENTS:
            return node.attr
        if isinstance(node, ast.Name):
            if node.id in self.extents:
                return self.extents[node.id]
            return _EXTENT_NAMES.get(node.id)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            left = self.extent_of(node.left)
            right = self.extent_of(node.right)
            if {left, right} == {"n_loc", "n_gst"}:
                return "n_total"
        if isinstance(node, (ast.Tuple, ast.List)) and node.elts:
            # (n_total, k)-style shape: the leading dim carries the extent.
            return self.extent_of(node.elts[0])
        return None

    def alloc_dist(self, size: ast.AST | None) -> str | None:
        """Distribution state implied by an allocation-size expression."""
        ext = self.extent_of(size)
        if ext == "n_total":
            return DIST_GHOST
        if ext == "n_loc":
            return DIST_OWNER
        if ext == "n_global":
            return DIST_REPL
        return None
