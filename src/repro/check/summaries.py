"""Per-function interprocedural summaries for the whole-program pass.

For every function in the :class:`~.callgraph.CallGraph`, this module
computes a :class:`FunctionSummary` capturing the two facts the deep
rules need about a call site without re-analyzing the callee:

* **schedule** — the sequence of collectives the function *transitively*
  issues (its own ``comm.<op>()`` sites plus, spliced in source order,
  the schedules of the module-level functions it calls);
* **lattice effect** — how the replication lattice flows through the
  function: the level of its return value when all arguments are
  replicated (``return_level``), which parameters join into the return
  level (``return_params``), and which parameters *gate* (control-flow
  guard) or *size* (argument/trip-count) a transitive collective
  (``gate_params`` / ``size_params``).

Summaries are computed callees-first over the SCC condensation, so a
callee's summary is final before any caller consumes it; functions in a
recursion cycle fall back to their *direct* collective sites (documented
soundness limit, DESIGN.md §13).  Parameter effects are computed by
differential taint: classify the function once with every parameter
replicated, once with one parameter pinned ``RANK_DEPENDENT``, and
attribute to that parameter exactly the expressions whose level rises.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable

from ._astutil import (
    RANK_DEPENDENT,
    REPLICATED,
    _classify,
    _collective_op,
    _Env,
    _fn_params,
    _infer_env,
    _is_subcomm_receiver,
    _subcomm_names,
    _walk_in_scope,
)
from .callgraph import CallGraph, FunctionInfo

__all__ = ["FunctionSummary", "build_summaries", "summaries_digest",
           "bind_args"]

#: Schedules longer than this are truncated with a trailing marker; the
#: deep rules compare sequences for equality, and a truncated pair that
#: agrees on the first 64 ops is treated as matching (precision-first).
MAX_SCHEDULE = 64


@dataclass(frozen=True)
class FunctionSummary:
    """Interprocedural facts about one function."""

    key: str
    #: Positional parameter names in declaration order (posonly + args).
    positional: tuple[str, ...]
    #: Every parameter name (incl. kwonly), for keyword binding.
    params: tuple[str, ...]
    #: Transitive collective ops, source order ("…" marks truncation,
    #: "rec:<name>" an unexpanded recursive callee).
    schedule: tuple[str, ...]
    #: Lattice level of the return value with all parameters replicated.
    return_level: int
    #: Parameters whose level joins into the return level.
    return_params: frozenset[str]
    #: Parameters that guard a (transitive) collective behind control flow.
    gate_params: frozenset[str]
    #: Parameters that feed a collective argument or a collective-loop
    #: trip count.
    size_params: frozenset[str]

    @property
    def issues(self) -> bool:
        return bool(self.schedule)


@dataclass
class SummaryTable:
    """Summary lookup plus the call-site helpers the deep pass uses."""

    graph: CallGraph
    by_key: dict[str, FunctionSummary] = field(default_factory=dict)

    def for_call(self, mod, call: ast.Call) -> FunctionSummary | None:
        fi = self.graph.resolve(mod, call)
        return self.by_key.get(fi.key) if fi is not None else None

    def call_level(self, mod) -> Callable[[ast.Call, _Env], int | None]:
        """An ``_Env.call_level`` hook bound to one module's imports."""

        def hook(call: ast.Call, env: _Env) -> int | None:
            summary = self.for_call(mod, call)
            if summary is None:
                return None
            level = summary.return_level
            for name, expr in bind_args(summary, call):
                if name in summary.return_params:
                    level = max(level, _classify(expr, env))
            return level

        return hook


def bind_args(summary: FunctionSummary,
              call: ast.Call) -> list[tuple[str, ast.expr]]:
    """Map call-site argument expressions onto callee parameter names."""
    out: list[tuple[str, ast.expr]] = []
    for i, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break  # positions past a *splat are unknowable statically
        if i < len(summary.positional):
            out.append((summary.positional[i], arg))
    for kw in call.keywords:
        if kw.arg is not None and kw.arg in summary.params:
            out.append((kw.arg, kw.value))
    return out


# ---------------------------------------------------------------------------
# schedule expansion
# ---------------------------------------------------------------------------
def _ordered_scope_calls(fn: ast.AST) -> list[ast.Call]:
    calls = [n for n in _walk_in_scope(fn) if isinstance(n, ast.Call)]
    calls.sort(key=lambda c: (c.lineno, c.col_offset))
    return calls


def _expand_schedule(fi: FunctionInfo, table: SummaryTable,
                     in_progress: set[str]) -> tuple[str, ...]:
    ops: list[str] = []
    subcomms = _subcomm_names(fi.node)
    for call in _ordered_scope_calls(fi.node):
        if len(ops) >= MAX_SCHEDULE:
            ops.append("…")
            break
        op = _collective_op(call)
        if op is not None:
            # Subgroup-scoped collectives are not part of the function's
            # world schedule (the split/rows/cols factory call itself is).
            if not _is_subcomm_receiver(call, subcomms):
                ops.append(op)
            continue
        target = fi.module and table.graph.resolve(fi.module, call)
        if target is None:
            continue
        if target.key in in_progress:
            # Recursive cycle: stand in for the callee without expanding.
            ops.append(f"rec:{target.qualname}")
            continue
        callee = table.by_key.get(target.key)
        if callee is not None and callee.schedule:
            room = MAX_SCHEDULE - len(ops)
            ops.extend(callee.schedule[:room])
            if len(callee.schedule) > room:
                ops.append("…")
                break
    return tuple(ops[: MAX_SCHEDULE + 1])


# ---------------------------------------------------------------------------
# lattice effects (differential taint)
# ---------------------------------------------------------------------------
def _return_exprs(fn: ast.AST) -> list[ast.expr]:
    return [n.value for n in _walk_in_scope(fn)
            if isinstance(n, ast.Return) and n.value is not None]


def _collective_subtree(node: ast.AST, fi: FunctionInfo,
                        table: SummaryTable) -> bool:
    """Does this subtree (transitively) issue a collective?"""
    for child in ast.walk(node):
        if not isinstance(child, ast.Call):
            continue
        if _collective_op(child) is not None:
            return True
        target = table.graph.resolve(fi.module, child)
        if target is not None:
            s = table.by_key.get(target.key)
            if s is not None and s.issues:
                return True
    return False


def _param_effects(fi: FunctionInfo, params: list[str],
                   table: SummaryTable) -> tuple[
                       int, frozenset[str], frozenset[str], frozenset[str]]:
    """Return-level/flow and gate/size parameter sets for one function."""
    fn = fi.node
    hook = table.call_level(fi.module)
    env0 = _infer_env(fn, params, call_level=hook)
    returns = _return_exprs(fn)
    base_return = max((_classify(e, env0) for e in returns),
                      default=REPLICATED)

    # Interesting sinks, precomputed once: branch/loop guards over
    # collective-issuing subtrees, and collective-feeding expressions.
    guards: list[ast.expr] = []
    for node in _walk_in_scope(fn):
        if isinstance(node, ast.If):
            subtree_has = any(
                _collective_subtree(s, fi, table)
                for s in node.body + node.orelse)
            if subtree_has:
                guards.append(node.test)
        elif isinstance(node, (ast.While, ast.For)):
            driver = node.test if isinstance(node, ast.While) else node.iter
            if any(_collective_subtree(s, fi, table) for s in node.body):
                guards.append(driver)
    size_exprs: list[ast.expr] = []
    for node in _walk_in_scope(fn):
        if isinstance(node, ast.Call):
            if _collective_op(node) is not None:
                size_exprs.extend(node.args)
                size_exprs.extend(kw.value for kw in node.keywords)
            else:
                target = table.graph.resolve(fi.module, node)
                if target is None:
                    continue
                callee = table.by_key.get(target.key)
                if callee is None:
                    continue
                # An argument bound to a callee gate/size parameter is a
                # transitive gate/size sink.
                for pname, expr in bind_args(callee, node):
                    if pname in callee.gate_params | callee.size_params:
                        size_exprs.append(expr)

    return_params: set[str] = set()
    gate_params: set[str] = set()
    size_params: set[str] = set()
    for p in params:
        if p == "rank":
            # Already RANK_DEPENDENT in every env: the differential is
            # blind to it, but the shallow rules treat it natively.
            continue
        envP = _infer_env(fn, params, call_level=hook,
                          overrides={p: RANK_DEPENDENT})

        def rises(expr: ast.expr) -> bool:
            return _classify(expr, envP) > _classify(expr, env0)

        if returns and any(rises(e) for e in returns):
            return_params.add(p)
        if any(rises(g) for g in guards):
            gate_params.add(p)
        if any(rises(e) for e in size_exprs):
            size_params.add(p)
    return (base_return, frozenset(return_params),
            frozenset(gate_params), frozenset(size_params))


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------
def build_summaries(graph: CallGraph) -> SummaryTable:
    """Compute summaries callees-first over the SCC condensation."""
    table = SummaryTable(graph)
    for component in graph.topo_order():
        in_progress = {fi.key for fi in component}
        # Pass 1 (schedules): members of a cycle see each other as
        # "rec:" markers; singleton components expand fully.
        for fi in component:
            args = fi.node.args
            positional = tuple(a.arg for a in args.posonlyargs + args.args)
            params = _fn_params(fi.node)
            schedule = _expand_schedule(fi, table, in_progress)
            table.by_key[fi.key] = FunctionSummary(
                key=fi.key, positional=positional, params=tuple(params),
                schedule=schedule, return_level=REPLICATED,
                return_params=frozenset(), gate_params=frozenset(),
                size_params=frozenset())
        # A recursion cycle whose members issue no real collective must
        # not look like one: drop schedules that are pure "rec:" markers
        # (e.g. a recursive payload-walking helper), else every recursive
        # function would become a phantom collective site.
        if not any(op for fi in component
                   for op in table.by_key[fi.key].schedule
                   if not op.startswith("rec:")):
            for fi in component:
                stub = table.by_key[fi.key]
                if stub.schedule:
                    table.by_key[fi.key] = FunctionSummary(
                        key=stub.key, positional=stub.positional,
                        params=stub.params, schedule=(),
                        return_level=stub.return_level,
                        return_params=stub.return_params,
                        gate_params=stub.gate_params,
                        size_params=stub.size_params)
        # Pass 2 (lattice effects): runs with every member's schedule
        # visible, so gate/size sinks include intra-component calls.
        for fi in component:
            stub = table.by_key[fi.key]
            params = list(stub.params)
            (return_level, return_params,
             gate_params, size_params) = _param_effects(fi, params, table)
            table.by_key[fi.key] = FunctionSummary(
                key=stub.key, positional=stub.positional,
                params=stub.params, schedule=stub.schedule,
                return_level=return_level, return_params=return_params,
                gate_params=gate_params, size_params=size_params)
    return table


def summaries_digest(table: SummaryTable) -> str:
    """Stable content hash of the whole summary table.

    Deep findings for one file depend on every *summary* in the program,
    not on every byte of every other file — keying the result cache on
    this digest keeps cache hits warm across edits that do not change any
    interprocedural fact.
    """
    import hashlib

    h = hashlib.sha256()
    for key in sorted(table.by_key):
        s = table.by_key[key]
        h.update(repr((s.key, s.positional, s.params, s.schedule,
                       s.return_level, sorted(s.return_params),
                       sorted(s.gate_params),
                       sorted(s.size_params))).encode())
    return h.hexdigest()
