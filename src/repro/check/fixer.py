"""Minimal, idempotent autofixes for mechanical lint findings.

``repro check --fix`` applies the text edits attached to findings by the
analysis passes (``Finding.fix``).  Two edit kinds exist:

``replace``
    substitute one single-line span (``line``/``col``/``end_col``,
    0-based character offsets) with ``text`` — e.g. the SPMD013
    ``unmap[...]`` wrap;
``hoist``
    move whole source lines (``lines = [start, end]``, 1-based,
    inclusive) to just above the loop header at line ``before``,
    dedented by ``dedent`` columns — e.g. PERF001 loop-invariant
    collectives and PERF003 ``np.empty`` buffer allocations.

Fixes with ``apply: False`` are suggestions (PERF002 flat-path
substitutions): they are surfaced through SARIF but never applied,
because applying them mechanically would require liveness the analyzer
does not prove.

The applier is conservative by construction: at most one edit touches
any source line per pass (later claimants are skipped and re-surface on
the next run), suppressed/baselined findings are never fixed, and the
whole pipeline is idempotent — fixed sources re-lint clean for the
mechanical rules, and a second ``--fix`` run is a no-op.
"""

from __future__ import annotations

from collections import defaultdict
from pathlib import Path
from typing import Iterable, Sequence

from ._astutil import Finding

__all__ = ["apply_fixes", "fix_files", "fixable"]


def fixable(findings: Iterable[Finding]) -> list[Finding]:
    """The findings ``--fix`` would act on (mechanical, not muted)."""
    return [f for f in findings
            if f.fix is not None and f.fix.get("apply")
            and not f.suppressed and not f.baselined]


def _dedent(line: str, n: int) -> str:
    removed = 0
    while removed < n and line[:1] == " ":
        line = line[1:]
        removed += 1
    return line


def apply_fixes(source: str,
                findings: Sequence[Finding]) -> tuple[str, int]:
    """Apply every applicable fix to one file's source.

    Returns ``(new_source, n_applied)``.  Overlapping edits are resolved
    by line claims: the first fix (in line order) wins, later claimants
    are skipped and will be offered again on a subsequent run.
    """
    lines = source.splitlines(keepends=True)
    n_lines = len(lines)
    claimed: set[int] = set()
    replacements: dict[int, tuple[int, int, str]] = {}
    deletions: set[int] = set()
    insertions: dict[int, list[str]] = defaultdict(list)
    applied = 0

    for f in sorted(fixable(findings), key=lambda f: (f.line, f.col)):
        fix = f.fix
        if fix["kind"] == "replace":
            line = fix["line"]
            if line in claimed or not 1 <= line <= n_lines:
                continue
            text = lines[line - 1]
            col, end_col = fix["col"], fix["end_col"]
            if end_col > len(text.rstrip("\r\n")):
                continue  # the file drifted since analysis
            claimed.add(line)
            replacements[line] = (col, end_col, fix["text"])
            applied += 1
        elif fix["kind"] == "hoist":
            start, end = fix["lines"]
            before = fix["before"]
            if not (1 <= start <= end <= n_lines and 1 <= before <= start):
                continue
            if any(ln in claimed for ln in range(start, end + 1)):
                continue
            claimed.update(range(start, end + 1))
            block = [_dedent(lines[i - 1], max(0, fix.get("dedent", 0)))
                     for i in range(start, end + 1)]
            insertions[before].extend(block)
            deletions.update(range(start, end + 1))
            applied += 1

    if not applied:
        return source, 0
    out: list[str] = []
    for i, line in enumerate(lines, start=1):
        out.extend(insertions.get(i, ()))
        if i in deletions:
            continue
        if i in replacements:
            col, end_col, text = replacements[i]
            line = line[:col] + text + line[end_col:]
        out.append(line)
    return "".join(out), applied


def fix_files(findings: Iterable[Finding],
              dry_run: bool = False) -> dict[str, int]:
    """Apply fixes file-by-file; returns ``{path: n_applied}``.

    With ``dry_run`` nothing is written — the counts report what *would*
    change (the ``--fix --check`` CI drift gate).
    """
    by_path: dict[str, list[Finding]] = defaultdict(list)
    for f in findings:
        if f.fix is not None:
            by_path[f.path].append(f)
    changed: dict[str, int] = {}
    for path, file_findings in sorted(by_path.items()):
        p = Path(path)
        try:
            source = p.read_text()
        except OSError:
            continue
        new_source, applied = apply_fixes(source, file_findings)
        if applied and new_source != source:
            if not dry_run:
                p.write_text(new_source)
            changed[path] = applied
    return changed
