"""Backend-portability static pass ("picklecheck"): rule SPMD012.

The process-backed runtimes (``procs``, ``mpi``) ship SPMD work to spawned
rank processes by pickling: the kernel function pickles *by reference*
(module + qualname), so closures, lambdas, and other non-module-level
callables — and launch arguments that cannot be pickled at all (locks,
open files, sockets, generators) — fail at spawn with an
``SpmdLaunchError``.  The runtime diagnostics (PR 6,
:func:`repro.runtime.backends.base.find_unpicklable`) name the offender at
*launch time*; this pass flags the same constructs at *lint time*, before
any backend is ever selected, so code stays portable to every backend.

What is flagged (rule SPMD012, suppressible like every other rule):

* a ``lambda`` or a *nested* ``def`` (a function defined inside another
  function — a closure once it is shipped) passed as the kernel argument
  of ``run_spmd`` or anywhere into an ``AnalyticsEngine`` construction;
* launch arguments that are provably unpicklable: names bound to (or
  direct calls of) ``threading.Lock``/``RLock``/``Condition``/``Event``/
  ``Semaphore``, ``open(...)``, ``socket(...)``, and generator
  expressions (``(x for x in ...)`` pickles on no backend).

The pass is precision-first: only *locally visible* evidence fires — a
name is flagged only when its binding to a lambda / nested def /
unpicklable constructor is in the same scope as the launch call.  Values
that arrive through parameters are assumed portable (the runtime
diagnostics remain the backstop).
"""

from __future__ import annotations

import ast
from typing import Iterable

from ._astutil import Finding, _final_identifier, _walk_in_scope

__all__ = ["PORTABILITY_RULES", "lint_portability"]

PORTABILITY_RULES: dict[str, str] = {
    "SPMD012": "non-module-level callable (closure/lambda) or unpicklable "
               "value flows into an SPMD launch: fails at spawn on the "
               "procs/mpi backends",
}

#: Call targets treated as SPMD launches ``(final identifier)``.
_LAUNCHES = frozenset({"run_spmd"})

#: Call targets whose *every* argument is shipped to rank processes.
_ENGINES = frozenset({"AnalyticsEngine"})

#: ``run_spmd`` keyword arguments consumed by the launcher itself (never
#: shipped to ranks), mirroring :func:`repro.runtime.run_spmd`.
_LAUNCH_OPTION_KWARGS = frozenset(
    {"timeout", "collect_traces", "verify", "sanitize", "backend"})

#: Constructors whose results are famously unpicklable.
_UNPICKLABLE_CTORS = frozenset({
    "Lock", "RLock", "Condition", "Event", "Semaphore", "BoundedSemaphore",
    "Barrier", "local", "open", "socket", "Popen",
})


def _is_launch(call: ast.Call) -> str | None:
    ident = _final_identifier(call.func)
    if ident in _LAUNCHES:
        return "run_spmd"
    if ident in _ENGINES:
        return "AnalyticsEngine"
    return None


class _Scope:
    """Portability facts visible inside one scope (module or function)."""

    def __init__(self, owner: ast.AST, parent: "_Scope | None"):
        self.owner = owner
        self.parent = parent
        #: Names of defs nested inside a *function* scope (closures).
        self.nested_defs: set[str] = set()
        #: Names bound to a lambda in this scope.
        self.lambda_names: set[str] = set()
        #: Names bound to a known-unpicklable constructor in this scope.
        self.unpicklable: dict[str, str] = {}

    def lookup_nested_def(self, name: str) -> bool:
        s: _Scope | None = self
        while s is not None:
            if name in s.nested_defs:
                return True
            s = s.parent
        return False

    def lookup_lambda(self, name: str) -> bool:
        s: _Scope | None = self
        while s is not None:
            if name in s.lambda_names:
                return True
            s = s.parent
        return False

    def lookup_unpicklable(self, name: str) -> str | None:
        s: _Scope | None = self
        while s is not None:
            if name in s.unpicklable:
                return s.unpicklable[name]
            s = s.parent
        return None


def _collect_scope(owner: ast.AST, parent: _Scope | None) -> _Scope:
    scope = _Scope(owner, parent)
    inside_function = isinstance(owner, (ast.FunctionDef,
                                         ast.AsyncFunctionDef))
    # Walk direct statements (including nested blocks) but not nested
    # function bodies, looking at bindings.
    stack = list(ast.iter_child_nodes(owner))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if inside_function:
                scope.nested_defs.add(node.name)
            continue  # do not descend: nested scope
        if isinstance(node, (ast.ClassDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                if isinstance(node.value, ast.Lambda):
                    scope.lambda_names.add(target.id)
                elif isinstance(node.value, ast.Call):
                    ctor = _final_identifier(node.value.func)
                    if ctor in _UNPICKLABLE_CTORS:
                        scope.unpicklable[target.id] = ctor
        stack.extend(ast.iter_child_nodes(node))
    return scope


def _shipped_args(call: ast.Call, kind: str) -> Iterable[tuple[str, ast.expr]]:
    """The (description, expr) pairs a launch ships to rank processes."""
    if kind == "run_spmd":
        # run_spmd(nranks, fn, *args, **kwargs) — nranks itself is an int.
        if len(call.args) >= 2:
            yield "kernel function", call.args[1]
        for i, a in enumerate(call.args[2:], start=1):
            yield f"positional argument #{i}", a
        for kw in call.keywords:
            if kw.arg is None or kw.arg in _LAUNCH_OPTION_KWARGS:
                continue
            if kw.arg == "fn":
                yield "kernel function", kw.value
            else:
                yield f"keyword argument '{kw.arg}'", kw.value
    else:  # AnalyticsEngine: fn specs and payloads travel to workers
        for i, a in enumerate(call.args, start=1):
            yield f"positional argument #{i}", a
        for kw in call.keywords:
            if kw.arg is not None:
                yield f"keyword argument '{kw.arg}'", kw.value


def _diagnose(expr: ast.expr, scope: _Scope) -> str | None:
    """Why ``expr`` cannot ship to a process-backed rank, or ``None``."""
    if isinstance(expr, ast.Lambda):
        return "a lambda (pickles by reference; lambdas have no module path)"
    if isinstance(expr, ast.GeneratorExp):
        return "a generator expression (generators cannot be pickled)"
    if isinstance(expr, ast.Call):
        ctor = _final_identifier(expr.func)
        if ctor in _UNPICKLABLE_CTORS:
            return f"a {ctor}() result (unpicklable)"
        return None
    if isinstance(expr, ast.Name):
        if scope.lookup_nested_def(expr.id):
            return (f"the nested function '{expr.id}' (a closure: defined "
                    f"inside another function, so it has no module-level "
                    f"path to pickle by reference)")
        if scope.lookup_lambda(expr.id):
            return f"'{expr.id}', bound to a lambda (no module-level path)"
        ctor = scope.lookup_unpicklable(expr.id)
        if ctor is not None:
            return f"'{expr.id}', bound to a {ctor}() result (unpicklable)"
    if isinstance(expr, (ast.Tuple, ast.List)):
        for e in expr.elts:
            why = _diagnose(e, scope)
            if why is not None:
                return why
    if isinstance(expr, ast.Dict):
        for v in expr.values:
            if v is not None:
                why = _diagnose(v, scope)
                if why is not None:
                    return why
    return None


def _scan_scope(owner: ast.AST, parent: _Scope | None, path: str,
                select: frozenset[str], func_name: str,
                findings: list[Finding]) -> None:
    scope = _collect_scope(owner, parent)
    for node in _walk_in_scope(owner):
        if not isinstance(node, ast.Call):
            continue
        kind = _is_launch(node)
        if kind is None:
            continue
        for what, expr in _shipped_args(node, kind):
            why = _diagnose(expr, scope)
            if why is None:
                continue
            if "SPMD012" in select:
                findings.append(Finding(
                    rule="SPMD012",
                    message=(f"{kind} {what} is {why}; the procs/mpi "
                             f"backends reject this at spawn — move the "
                             f"callable to module level and pass data "
                             f"through picklable arguments"),
                    path=path, line=expr.lineno, col=expr.col_offset + 1,
                    function=func_name))
    # Recurse into nested function scopes with this scope as parent.
    stack = list(ast.iter_child_nodes(owner))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _scan_scope(node, scope, path, select, node.name, findings)
            continue
        if isinstance(node, ast.Lambda):
            continue
        stack.extend(ast.iter_child_nodes(node))


def lint_portability(tree: ast.Module, path: str,
                     select: frozenset[str]) -> list[Finding]:
    """Run SPMD012 over a parsed module."""
    findings: list[Finding] = []
    _scan_scope(tree, None, path, select, "<module>", findings)
    return findings
