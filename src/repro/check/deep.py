"""Whole-program SPMD analysis: the ``repro check --deep`` pass.

The intraprocedural linters (:mod:`.spmdlint`, :mod:`.racecheck`) go
blind the moment a rank-dependent value crosses a function boundary.
This module closes that gap:

1. it builds a module-level call graph over every file under analysis
   (:mod:`.callgraph`) and computes per-function summaries — transitive
   collective schedule plus the lattice effect on parameters and return
   value (:mod:`.summaries`);
2. it re-runs the schedule rules with two interprocedural hooks plugged
   into :class:`~.spmdlint._FunctionLinter` — calls to collective-issuing
   helpers become schedule *sites* (so SPMD002/003 fire across call
   boundaries) and calls to summarized functions classify from their
   summaries (so a helper returning ``comm.rank``-derived data taints its
   caller and SPMD001–005 fire on previously invisible flows);
3. it adds three interprocedural rules — SPMD009 (collective reachable
   only under rank-dependent control flow), SPMD010 (rank-dependent
   argument into a gate/size parameter), SPMD011 (conflicting transitive
   schedules at a join point) — and the backend-portability rule SPMD012
   (:mod:`.picklecheck`);
4. it reports through the shared machinery: findings dedupe against the
   shallow pass, honor inline suppressions, can be grandfathered by a
   checked-in baseline (:func:`load_baseline`), and are memoized in a
   content-hash result cache keyed on ``(file sha, summary-table digest)``
   so ``--deep`` over the full tree stays fast in ``scripts/check.sh``.
"""

from __future__ import annotations

import ast
import hashlib
import json
from collections import Counter
from dataclasses import asdict
from pathlib import Path
from typing import Iterable, Sequence

from ._astutil import (
    RANK_DEPENDENT,
    Finding,
    _classify,
    _Env,
    _final_identifier,
    _is_comm_name,
    _is_subcomm_name,
)
from .callgraph import CallGraph, ModuleInfo, build_callgraph
from .picklecheck import lint_portability
from .racecheck import lint_ownership
from .spmdlint import (
    RULES,
    _FunctionLinter,
    apply_suppressions,
    iter_python_files,
)
from .distcheck import (
    DistTable,
    build_dist_summaries,
    dist_digest,
    lint_distribution,
)
from .summaries import (
    SummaryTable,
    bind_args,
    build_summaries,
    summaries_digest,
)

__all__ = ["deep_lint_paths", "deep_lint_files",
           "load_baseline", "write_baseline", "apply_baseline",
           "baseline_key", "ruleset_digest"]

#: Bumped whenever analyzer behavior changes: invalidates result caches.
ANALYZER_VERSION = 2

_RULESET_DIGEST: str | None = None


def ruleset_digest() -> str:
    """Content hash of the analyzer itself (every module in this package).

    Folded into every cache key so that editing any rule — even without
    remembering to bump :data:`ANALYZER_VERSION` — invalidates stale
    cached findings.  Computed once per process.
    """
    global _RULESET_DIGEST
    if _RULESET_DIGEST is None:
        h = hashlib.sha256()
        h.update(str(ANALYZER_VERSION).encode())
        pkg = Path(__file__).resolve().parent
        for src in sorted(pkg.glob("*.py")):
            h.update(src.name.encode())
            h.update(src.read_bytes())
        _RULESET_DIGEST = h.hexdigest()
    return _RULESET_DIGEST


# ---------------------------------------------------------------------------
# the deep linter: _FunctionLinter with interprocedural hooks
# ---------------------------------------------------------------------------
class _DeepLinter(_FunctionLinter):
    """Schedule rules with call-graph summaries plugged in.

    The branch check splits three ways at a rank-dependent ``if``:

    * direct (shallow-visible) site labels differ → SPMD001, exactly as
      the shallow pass reports it;
    * direct labels agree but the *expanded* transitive sequences differ,
      with exactly one arm issuing collectives → SPMD009 (some ranks
      reach a collective no other rank ever issues);
    * both arms issue collectives but in conflicting sequences → SPMD011.
    """

    def __init__(self, fn, path, select, mod: ModuleInfo,
                 table: SummaryTable):
        self._mod = mod
        self._table = table
        self._summary_hook = table.call_level(mod)
        super().__init__(fn, path, select)
        self._check_call_args()

    # -- hooks ---------------------------------------------------------------
    def _extra_site_label(self, call: ast.Call) -> str | None:
        summary = self._table.for_call(self._mod, call)
        if summary is not None and summary.issues:
            if self._subcomm_only_call(call):
                return None  # callee's schedule runs on the subgroup
            ident = _final_identifier(call.func)
            return f"call:{ident or '<dynamic>'}"
        return None

    def _subcomm_only_call(self, call: ast.Call) -> bool:
        """Every communicator argument of the call is a sub-communicator.

        A summarized helper whose schedule was derived from a ``comm``
        parameter issues subgroup collectives when invoked with a
        row/column communicator — not world sites.
        """
        saw_subcomm = False
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if isinstance(arg, ast.Name) and _is_comm_name(arg.id):
                if not (arg.id in self.subcomm_names
                        or _is_subcomm_name(arg.id)):
                    return False
                saw_subcomm = True
        return saw_subcomm

    def _call_level(self, call: ast.Call, env: _Env) -> int | None:
        return self._summary_hook(call, env)

    # -- SPMD001 / SPMD009 / SPMD011 ----------------------------------------
    def _expanded_ops(self, stmts: Sequence[ast.stmt]) -> list[str]:
        """Transitive collective sequence of a statement list."""
        ops: list[str] = []
        sites = []
        for s in stmts:
            sites.extend(self._sites_in(s))
        sites.sort(key=lambda lc: (lc[1].lineno, lc[1].col_offset))
        for label, call in sites:
            if label.startswith("call:"):
                summary = self._table.for_call(self._mod, call)
                if summary is not None:
                    ops.extend(summary.schedule)
                else:
                    ops.append(label)  # comm-forwarding, unknown schedule
            else:
                ops.append(label)
        return ops

    def _check_branch(self, stmt: ast.If, level: int) -> None:
        if level != RANK_DEPENDENT:
            return
        from .spmdlint import _site_label as shallow_label

        def shallow_ops(stmts: Sequence[ast.stmt]) -> Counter:
            out: Counter = Counter()
            for s in stmts:
                for label, call in self._sites_in(s):
                    if shallow_label(call) is not None:
                        out[label] += 1
            return out

        body_direct, else_direct = (shallow_ops(stmt.body),
                                    shallow_ops(stmt.orelse))
        if body_direct != else_direct:
            diff = sorted((body_direct - else_direct)
                          + (else_direct - body_direct))
            self._emit(
                "SPMD001", stmt,
                f"rank-dependent branch issues unmatched collectives "
                f"({', '.join(diff)}): every rank must run the same "
                f"schedule on both arms")
            return
        body_ops = self._expanded_ops(stmt.body)
        else_ops = self._expanded_ops(stmt.orelse)
        if body_ops == else_ops:
            return
        if bool(body_ops) != bool(else_ops):
            arm = "true" if body_ops else "else"
            ops = body_ops or else_ops
            self._emit(
                "SPMD009", stmt,
                f"collective schedule ({', '.join(sorted(set(ops))[:4])}) "
                f"is reachable only through the {arm} arm of a "
                f"rank-dependent branch (via helper calls): ranks that "
                f"skip the arm never issue it and the world deadlocks")
        else:
            self._emit(
                "SPMD011", stmt,
                f"the two paths from this rank-dependent branch issue "
                f"conflicting transitive collective sequences "
                f"([{', '.join(body_ops[:4])}] vs "
                f"[{', '.join(else_ops[:4])}]): every rank must reach the "
                f"join point with the same schedule")

    # -- SPMD010 -------------------------------------------------------------
    def _check_call_args(self) -> None:
        from ._astutil import _walk_in_scope

        for call in _walk_in_scope(self.fn):
            if not isinstance(call, ast.Call):
                continue
            summary = self._table.for_call(self._mod, call)
            if summary is None:
                continue
            sinks = summary.gate_params | summary.size_params
            if not sinks:
                continue
            for pname, expr in bind_args(summary, call):
                if pname not in sinks:
                    continue
                if _classify(expr, self.env) != RANK_DEPENDENT:
                    continue
                how = ("gates" if pname in summary.gate_params else "sizes")
                self._emit(
                    "SPMD010", expr,
                    f"rank-dependent value passed to parameter '{pname}' "
                    f"of '{summary.key.rsplit('.', 1)[-1]}', which {how} "
                    f"a collective inside the callee: ranks would run "
                    f"divergent schedules — replicate the value "
                    f"(allreduce/bcast) first")

    def run(self) -> list[Finding]:
        # SPMD010 findings exist even when this function has no sites of
        # its own (the collectives live in the callee).
        if not self.sites:
            return self.findings
        self._visit_block(self.fn.body, loops=[], cond=None)
        return self.findings


# ---------------------------------------------------------------------------
# per-module deep lint
# ---------------------------------------------------------------------------
def _dedupe_key(f: Finding) -> tuple:
    return (f.rule, f.path, f.line, f.col, f.function)


def _deep_lint_module(mod: ModuleInfo, table: SummaryTable,
                      select: frozenset[str],
                      dist_table: DistTable | None = None) -> list[Finding]:
    """Shallow + deep + portability findings for one parsed module."""
    findings: list[Finding] = []
    shallow_seen: set[tuple] = set()
    for node in ast.walk(mod.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        shallow = _FunctionLinter(node, str(mod.path), select).run()
        findings.extend(shallow)
        shallow_seen.update(_dedupe_key(f) for f in shallow)
        deep = _DeepLinter(node, str(mod.path), select, mod, table).run()
        findings.extend(f for f in deep
                        if _dedupe_key(f) not in shallow_seen)
    findings.extend(lint_ownership(mod.tree, str(mod.path), select))
    findings.extend(lint_portability(mod.tree, str(mod.path), select))
    findings.extend(lint_distribution(mod.tree, str(mod.path), select,
                                      source=mod.source, table=dist_table,
                                      mod=mod))
    apply_suppressions(findings, mod.source)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


# ---------------------------------------------------------------------------
# content-hash result cache
# ---------------------------------------------------------------------------
class ResultCache:
    """JSON file memoizing per-file deep findings.

    Key: ``sha256(source) + summary-table digests + rule selection +
    ruleset digest (analyzer version + analyzer source hash)``.  Because
    the digests cover interprocedural *summaries* rather than raw bytes of
    other files, editing a comment in one file leaves every other file's
    entry hot — while any edit to the analyzer itself misses everything.
    Entries not touched by the current run are dropped on save, so the
    file cannot grow without bound.
    """

    def __init__(self, path: Path):
        self.path = Path(path)
        self.hits = 0
        self.misses = 0
        self._entries: dict[str, list[dict]] = {}
        self._touched: set[str] = set()
        if self.path.exists():
            try:
                data = json.loads(self.path.read_text())
                if data.get("version") == ruleset_digest():
                    self._entries = data.get("entries", {})
            except (json.JSONDecodeError, OSError):
                self._entries = {}

    @staticmethod
    def key(source: str, digest: str, select: frozenset[str]) -> str:
        h = hashlib.sha256()
        h.update(source.encode())
        h.update(digest.encode())
        h.update(",".join(sorted(select)).encode())
        h.update(ruleset_digest().encode())
        return h.hexdigest()

    def get(self, key: str) -> list[Finding] | None:
        raw = self._entries.get(key)
        if raw is None:
            self.misses += 1
            return None
        self.hits += 1
        self._touched.add(key)
        return [Finding(**entry) for entry in raw]

    def put(self, key: str, findings: list[Finding]) -> None:
        self._entries[key] = [asdict(f) for f in findings]
        self._touched.add(key)

    def save(self) -> None:
        payload = {
            "version": ruleset_digest(),
            "entries": {k: v for k, v in self._entries.items()
                        if k in self._touched},
        }
        self.path.write_text(json.dumps(payload))


# ---------------------------------------------------------------------------
# baseline (grandfathered findings)
# ---------------------------------------------------------------------------
def baseline_key(f: Finding) -> str:
    """Line-drift-tolerant identity of a finding.

    Keyed on (path, rule, function, message) — not on line/column — so
    unrelated edits above a grandfathered finding do not resurrect it.
    """
    h = hashlib.sha256(
        f"{Path(f.path).as_posix()}|{f.rule}|{f.function}|{f.message}"
        .encode()).hexdigest()[:16]
    return h


def write_baseline(path: str | Path, findings: Iterable[Finding]) -> int:
    """Record every unsuppressed finding as grandfathered; returns count."""
    entries = sorted(
        {baseline_key(f): {"key": baseline_key(f), "rule": f.rule,
                           "path": Path(f.path).as_posix(),
                           "function": f.function}
         for f in findings if not f.suppressed}.values(),
        key=lambda e: (e["path"], e["rule"], e["key"]))
    payload = {"version": 1, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return len(entries)


def load_baseline(path: str | Path) -> set[str]:
    """The set of grandfathered finding keys recorded in a baseline file."""
    data = json.loads(Path(path).read_text())
    return {entry["key"] for entry in data.get("findings", [])}


def apply_baseline(findings: Iterable[Finding], keys: set[str]) -> None:
    """Mark findings present in the baseline as grandfathered."""
    for f in findings:
        if not f.suppressed and baseline_key(f) in keys:
            f.baselined = True


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------
def deep_lint_files(files: Sequence[Path],
                    select: Iterable[str] | None = None,
                    cache: ResultCache | str | Path | None = None,
                    ) -> list[Finding]:
    """Whole-program lint over an explicit file list."""
    selected = frozenset(select) if select is not None else frozenset(RULES)
    graph: CallGraph = build_callgraph(files)
    table = build_summaries(graph)
    dist_table = build_dist_summaries(graph)
    digest = summaries_digest(table) + dist_digest(dist_table)
    if cache is not None and not isinstance(cache, ResultCache):
        cache = ResultCache(Path(cache))
    findings: list[Finding] = []
    for path in files:
        mod = graph.by_path.get(Path(path).resolve())
        if mod is None:
            continue  # unparseable file: nothing to report statically
        key = ResultCache.key(mod.source, digest, selected)
        cached = cache.get(key) if cache is not None else None
        if cached is not None:
            findings.extend(cached)
            continue
        result = _deep_lint_module(mod, table, selected, dist_table)
        if cache is not None:
            cache.put(key, result)
        findings.extend(result)
    if cache is not None:
        cache.save()
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def deep_lint_paths(paths: Sequence[str | Path],
                    select: Iterable[str] | None = None,
                    cache: ResultCache | str | Path | None = None,
                    ) -> list[Finding]:
    """Whole-program lint over files and/or directory trees."""
    return deep_lint_files(iter_python_files(paths), select=select,
                           cache=cache)
