"""Module-level call graph over a set of Python sources.

The whole-program pass (:mod:`.deep`) needs to know, for a call site
``helper(world, data)``, *which* function ``helper`` is — across files —
so it can splice in that function's collective schedule and lattice
summary.  This module parses every file once, indexes functions, resolves
``import`` statements within the analyzed set, and exposes:

* :meth:`CallGraph.resolve` — call expression → :class:`FunctionInfo`
  (or ``None`` for calls the graph cannot see);
* :meth:`CallGraph.topo_order` — functions ordered callees-first over the
  strongly-connected-component condensation, so summaries can be computed
  bottom-up (recursion cycles collapse into one component).

Resolution is name-based and deliberately precision-first, matching the
linters it feeds:

* plain calls ``f(...)`` resolve to a module-level function ``f`` of the
  same module, or to ``from m import f`` / ``from m import f as g``
  targets when module ``m`` is part of the analyzed set;
* attribute calls ``m.f(...)`` resolve through ``import m`` aliases;
* *method* calls ``obj.f(...)`` are never resolved (no type inference) —
  methods are still indexed and deep-linted as functions in their own
  right, but call edges into them are invisible.  See DESIGN.md §13 for
  the soundness consequences.

Dotted module names are derived from the filesystem (walking up through
``__init__.py`` packages); flat fixture files resolve by bare stem so
corpus modules can import each other.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

__all__ = ["FunctionInfo", "ModuleInfo", "CallGraph", "build_callgraph"]


@dataclass
class FunctionInfo:
    """One analyzed function (module-level function or method)."""

    key: str                    # "<module>.<qualname>", globally unique
    qualname: str               # e.g. "helper" or "Engine.run"
    module: "ModuleInfo"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_method: bool

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<fn {self.key}>"


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: Path
    name: str                   # dotted module name ("repro.analytics.pr")
    source: str
    tree: ast.Module
    #: Module-level functions by bare name (call-resolution targets).
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: Every function including methods, by qualname (lint targets).
    all_functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: Local alias -> dotted target: "f" -> "pkg.mod.f", "m" -> "pkg.mod".
    imports: dict[str, str] = field(default_factory=dict)


def _module_name(path: Path) -> str:
    """Dotted module name from the package ancestry on disk."""
    path = path.resolve()
    parts = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    name = ".".join(reversed(parts))
    if name.endswith(".__init__"):
        name = name[: -len(".__init__")]
    return name


def _collect_imports(mod: ModuleInfo) -> None:
    pkg_parts = mod.name.split(".")[:-1]
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                mod.imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative import: resolve against this module's package.
                base = pkg_parts[: len(pkg_parts) - (node.level - 1)] \
                    if node.level <= len(pkg_parts) + 1 else []
                prefix = ".".join(base)
                source = (f"{prefix}.{node.module}" if node.module and prefix
                          else (node.module or prefix))
            else:
                source = node.module or ""
            if not source:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                mod.imports[local] = f"{source}.{alias.name}"


def _index_functions(mod: ModuleInfo) -> None:
    def visit(node: ast.AST, prefix: str, depth: int,
              in_class: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                fi = FunctionInfo(
                    key=f"{mod.name}.{qual}", qualname=qual,
                    module=mod, node=child, is_method=in_class)
                mod.all_functions[qual] = fi
                if depth == 0 and not in_class:
                    mod.functions[child.name] = fi
                visit(child, f"{qual}.<locals>.", depth + 1, False)
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.", depth, True)
            else:
                visit(child, prefix, depth, in_class)

    visit(mod.tree, "", 0, False)


class CallGraph:
    """Parsed modules + resolved call edges over the analyzed file set."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}     # by dotted name
        self.by_path: dict[Path, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}  # by key
        #: Bare-stem aliases ("clean_helpers" -> dotted name) for flat
        #: fixture directories whose files import each other by stem.
        self._stem_alias: dict[str, str] = {}

    # -- construction -------------------------------------------------------
    def add_file(self, path: Path) -> ModuleInfo | None:
        path = Path(path)
        source = path.read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            return None
        mod = ModuleInfo(path=path, name=_module_name(path),
                         source=source, tree=tree)
        self.modules[mod.name] = mod
        self.by_path[path.resolve()] = mod
        self._stem_alias.setdefault(path.stem, mod.name)
        _collect_imports(mod)
        _index_functions(mod)
        for fi in mod.all_functions.values():
            self.functions[fi.key] = fi
        return mod

    def _lookup_module(self, dotted: str) -> ModuleInfo | None:
        if dotted in self.modules:
            return self.modules[dotted]
        alias = self._stem_alias.get(dotted)
        return self.modules.get(alias) if alias else None

    def _lookup_function(self, dotted: str) -> FunctionInfo | None:
        """Resolve "pkg.mod.f" to a module-level function in the set."""
        mod_name, _, fn_name = dotted.rpartition(".")
        mod = self._lookup_module(mod_name)
        if mod is None:
            return None
        if fn_name in mod.functions:
            return mod.functions[fn_name]
        # Chase one level of package re-export: "from repro.analytics
        # import pagerank" where the package __init__ itself imports
        # pagerank from a submodule.
        if fn_name in mod.imports:
            target = mod.imports[fn_name]
            tmod = self._lookup_module(target.rpartition(".")[0])
            if tmod is not None:
                return tmod.functions.get(target.rpartition(".")[2])
        return None

    # -- resolution ---------------------------------------------------------
    def resolve(self, mod: ModuleInfo, call: ast.Call) -> FunctionInfo | None:
        """The function a call expression targets, when statically visible."""
        fn = call.func
        if isinstance(fn, ast.Name):
            if fn.id in mod.functions:
                return mod.functions[fn.id]
            if fn.id in mod.imports:
                return self._lookup_function(mod.imports[fn.id])
            return None
        if isinstance(fn, ast.Attribute) and isinstance(fn.value, ast.Name):
            base = fn.value.id
            if base in mod.imports:
                target_mod = self._lookup_module(mod.imports[base])
                if target_mod is not None:
                    return target_mod.functions.get(fn.attr)
            maybe = self._lookup_module(base)
            if maybe is not None:
                return maybe.functions.get(fn.attr)
        return None

    def callees(self, fi: FunctionInfo) -> list[FunctionInfo]:
        """Unique resolved callees of one function, in source order."""
        seen: dict[str, FunctionInfo] = {}
        for node in _walk_calls(fi.node):
            target = self.resolve(fi.module, node)
            if target is not None and target.key not in seen:
                seen[target.key] = target
        return list(seen.values())

    # -- ordering -----------------------------------------------------------
    def topo_order(self) -> list[list[FunctionInfo]]:
        """SCC condensation in callees-first order (Tarjan, iterative)."""
        keys = list(self.functions)
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        sccs: list[list[FunctionInfo]] = []
        counter = 0
        adj = {k: [c.key for c in self.callees(self.functions[k])]
               for k in keys}

        for root in keys:
            if root in index:
                continue
            work: list[tuple[str, int]] = [(root, 0)]
            while work:
                node, i = work[-1]
                if i == 0:
                    index[node] = low[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                advanced = False
                for j in range(i, len(adj[node])):
                    nxt = adj[node][j]
                    if nxt not in index:
                        work[-1] = (node, j + 1)
                        work.append((nxt, 0))
                        advanced = True
                        break
                    if nxt in on_stack:
                        low[node] = min(low[node], index[nxt])
                if advanced:
                    continue
                if low[node] == index[node]:
                    comp: list[FunctionInfo] = []
                    while True:
                        k = stack.pop()
                        on_stack.discard(k)
                        comp.append(self.functions[k])
                        if k == node:
                            break
                    sccs.append(comp)
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        return sccs  # Tarjan emits components callees-first already


def _walk_calls(fn: ast.AST):
    """Call expressions inside one function scope (nested defs excluded)."""
    from ._astutil import _walk_in_scope

    for node in _walk_in_scope(fn):
        if isinstance(node, ast.Call):
            yield node


def build_callgraph(files: Sequence[Path]) -> CallGraph:
    """Parse and index every file into one call graph."""
    graph = CallGraph()
    for f in files:
        graph.add_file(Path(f))
    return graph
