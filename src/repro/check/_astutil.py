"""Shared AST primitives for the static SPMD passes.

Both analyzers — the collective-*schedule* linter (:mod:`.spmdlint`,
SPMD001–005) and the buffer-*ownership* linter (:mod:`.racecheck`,
SPMD006–008) — recognize collective call sites the same way and report
through the same :class:`Finding` record, so those pieces live here.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable

__all__ = ["Finding", "COLLECTIVES"]

#: Collective method names recognized on a communicator receiver.
COLLECTIVES = frozenset({
    "barrier", "bcast", "gather", "allgather", "scatter", "alltoall",
    "allreduce", "reduce", "scan", "exscan", "allgatherv", "gatherv",
    "reduce_scatter", "alltoallv", "alltoallv_flat", "alltoallv_plan",
    "split",
})


@dataclass
class Finding:
    """One lint finding (or suppressed would-be finding)."""

    rule: str
    message: str
    path: str
    line: int
    col: int
    function: str = "<module>"
    suppressed: bool = False

    def format(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return (f"{self.path}:{self.line}:{self.col}: {self.rule} "
                f"[{self.function}] {self.message}{tag}")


def _final_identifier(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_comm_expr(node: ast.expr) -> bool:
    ident = _final_identifier(node)
    return ident is not None and "comm" in ident.lower()


def _collective_op(call: ast.Call) -> str | None:
    """Name of the collective when ``call`` is ``<comm>.{op}(...)``."""
    fn = call.func
    if (isinstance(fn, ast.Attribute) and fn.attr in COLLECTIVES
            and _is_comm_expr(fn.value)):
        return fn.attr
    return None


def _target_names(target: ast.AST) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for elt in target.elts:
            out.extend(_target_names(elt))
        return out
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []  # subscript/attribute stores do not (re)bind a name


_SCOPE_BARRIERS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                   ast.Lambda)


def _walk_in_scope(node: ast.AST) -> Iterable[ast.AST]:
    """Walk a subtree without descending into nested function/class scopes."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, _SCOPE_BARRIERS):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))
