"""Shared AST primitives for the static SPMD passes.

All four analyzers — the collective-*schedule* linter (:mod:`.spmdlint`,
SPMD001–005), the buffer-*ownership* linter (:mod:`.racecheck`,
SPMD006–008), the whole-program *deep* pass (:mod:`.deep`, SPMD009–011
plus interprocedural SPMD001–005), and the backend-*portability* pass
(:mod:`.picklecheck`, SPMD012) — recognize collective call sites the same
way, classify expressions over the same replication lattice, and report
through the same :class:`Finding` record, so those pieces live here.

The replication lattice
-----------------------
Every expression is classified into a three-level lattice:

``REPLICATED``
    provably identical on all ranks under the codebase's conventions:
    constants, function arguments (``run_spmd`` passes the same arguments
    to every rank), module-level names, and the results of uniform-result
    collectives (``allreduce``, ``bcast``, ``allgather``, ``allgatherv``);
``RANK_LOCAL``
    potentially different per rank: results of per-rank collectives
    (``alltoallv``, ``gather``, ``scan``, …) and anything derived;
``RANK_DEPENDENT``
    explicitly keyed on the rank id (``comm.rank`` or any ``.rank``
    attribute) and anything derived from it.

:func:`_classify` computes the level of one expression under an
:class:`_Env` (name → level); :func:`_infer_env` runs the fixpoint over a
function body so taint flows through assignment chains.  An ``_Env`` may
carry a ``call_level`` hook: the deep pass uses it to classify calls to
*known* functions from their interprocedural summaries, while the shallow
pass falls back to the conservative max-over-arguments join.

Sub-communicators
-----------------
``comm.split`` / ``comm.rows`` / ``comm.cols`` return communicators over
a *subgroup* of the world.  The schedule rules (SPMD001–005) and the
reduction-shape rule (SPMD016) model the world-wide schedule, so
collectives issued on a sub-communicator are out of their scope:
:func:`_is_subcomm_name` recognizes the naming convention (``row_comm``,
``col_comm``, ``sub_comm``, ``grid_comm``, …) and :func:`_subcomm_names`
tracks names assigned from a factory call regardless of spelling.  The
factory call itself stays a world collective site; subgroup-internal
consistency is enforced at runtime by the verifier, whose collective
signatures are scoped to the subgroup a ``split`` creates.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

__all__ = ["Finding", "COLLECTIVES", "UNIFORM_RESULT", "SUBCOMM_FACTORIES",
           "REPLICATED", "RANK_LOCAL", "RANK_DEPENDENT"]

#: Collective method names recognized on a communicator receiver.
COLLECTIVES = frozenset({
    "barrier", "bcast", "gather", "allgather", "scatter", "alltoall",
    "allreduce", "reduce", "scan", "exscan", "allgatherv", "gatherv",
    "reduce_scatter", "alltoallv", "alltoallv_flat", "alltoallv_plan",
    "split", "rows", "cols",
})

#: Sub-communicator factories: *calling* one is a world collective (it
#: is ``split`` or the cached grid wrapper), but collectives issued on
#: the returned communicator are scoped to the subgroup, so the schedule
#: rules must not count them as world-wide sites (see spmdlint).
SUBCOMM_FACTORIES = frozenset({"split", "rows", "cols"})

#: Collectives whose result is identical on every rank.
UNIFORM_RESULT = frozenset(
    {"allreduce", "bcast", "allgather", "allgatherv", "barrier"})

# Expression replication lattice (monotone: larger = less replicated).
REPLICATED, RANK_LOCAL, RANK_DEPENDENT = 0, 1, 2


@dataclass
class Finding:
    """One lint finding (or suppressed would-be finding)."""

    rule: str
    message: str
    path: str
    line: int
    col: int
    function: str = "<module>"
    suppressed: bool = False
    baselined: bool = False
    #: Optional mechanical edit (JSON-able dict, see .fixer): kind
    #: "replace" (line/col span -> text) or "hoist" (move lines above a
    #: loop); "apply" False marks suggestion-only fixes (SARIF surfaces
    #: them, ``repro check --fix`` does not apply them).
    fix: dict | None = None

    def format(self) -> str:
        tag = (" (suppressed)" if self.suppressed
               else " (baselined)" if self.baselined else "")
        return (f"{self.path}:{self.line}:{self.col}: {self.rule} "
                f"[{self.function}] {self.message}{tag}")


def _final_identifier(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_comm_name(name: str) -> bool:
    """Word-boundary communicator-name test.

    ``comm``, ``sub_comm``, ``comm_world``, ``mpi_comm`` are communicators;
    ``common``, ``community``, ``recommend`` are not.  An identifier counts
    only when one of its ``_``-separated segments is exactly ``comm``.
    """
    return any(seg == "comm" for seg in name.lower().split("_"))


def _is_comm_expr(node: ast.expr) -> bool:
    ident = _final_identifier(node)
    return ident is not None and _is_comm_name(ident)


#: Name segments that mark a communicator identifier as subgroup-scoped.
_SUBCOMM_QUALIFIERS = frozenset(
    {"row", "rows", "col", "cols", "sub", "grid", "group"})


def _is_subcomm_name(name: str) -> bool:
    """Word-boundary *sub*-communicator-name test.

    ``row_comm``, ``col_comm``, ``sub_comm``, ``grid_comm`` name subgroup
    communicators by convention (a qualifying segment next to the
    ``comm`` segment); plain ``comm``, ``mpi_comm`` and ``comm_world``
    stay world communicators.
    """
    segs = name.lower().split("_")
    return "comm" in segs and not _SUBCOMM_QUALIFIERS.isdisjoint(segs)


def _subcomm_factory_op(call: ast.Call) -> str | None:
    """Factory name when ``call`` is ``<comm>.{split|rows|cols}(...)``."""
    op = _collective_op(call)
    return op if op in SUBCOMM_FACTORIES else None


def _subcomm_names(fn: ast.AST) -> frozenset[str]:
    """Names bound (directly or via aliasing) to sub-communicators.

    A name is subgroup-scoped when assigned from a subcomm factory call
    (``comm.split`` / ``comm.rows`` / ``comm.cols``), from another
    subcomm name, or from an attribute whose final identifier follows
    the subcomm naming convention (``self.col_comm``).
    """
    names: set[str] = set()

    def _value_is_subcomm(value: ast.expr) -> bool:
        if isinstance(value, ast.Call):
            return _subcomm_factory_op(value) is not None
        if isinstance(value, ast.Name):
            return value.id in names or _is_subcomm_name(value.id)
        if isinstance(value, ast.Attribute):
            return _is_subcomm_name(value.attr)
        return False

    for _ in range(4):
        before = len(names)
        for node in _walk_in_scope(fn):
            if isinstance(node, ast.Assign) and _value_is_subcomm(node.value):
                for tgt in node.targets:
                    names.update(_target_names(tgt))
            elif (isinstance(node, ast.AnnAssign) and node.value is not None
                    and _value_is_subcomm(node.value)):
                names.update(_target_names(node.target))
        if len(names) == before:
            break
    return frozenset(names)


def _is_subcomm_receiver(call: ast.Call,
                         names: frozenset[str] = frozenset()) -> bool:
    """Is this collective issued *on* a subgroup communicator?

    The factory call itself (``comm.split(...)``) is not a subcomm site
    — creating the group is a world collective; only operations on the
    result are subgroup-scoped.  ``names`` carries the in-scope names
    known to be split-derived (from :func:`_subcomm_names`); the naming
    convention applies even without it.
    """
    fn = call.func
    if not isinstance(fn, ast.Attribute):
        return False
    ident = _final_identifier(fn.value)
    return ident is not None and (ident in names or _is_subcomm_name(ident))


def _collective_op(call: ast.Call) -> str | None:
    """Name of the collective when ``call`` is ``<comm>.{op}(...)``."""
    fn = call.func
    if (isinstance(fn, ast.Attribute) and fn.attr in COLLECTIVES
            and _is_comm_expr(fn.value)):
        return fn.attr
    return None


def _target_names(target: ast.AST) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for elt in target.elts:
            out.extend(_target_names(elt))
        return out
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []  # subscript/attribute stores do not (re)bind a name


def _fn_params(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    """Every parameter name of a function, in declaration order."""
    args = fn.args
    params = [a.arg for a in (args.posonlyargs + args.args + args.kwonlyargs)]
    if args.vararg:
        params.append(args.vararg.arg)
    if args.kwarg:
        params.append(args.kwarg.arg)
    return params


_SCOPE_BARRIERS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                   ast.Lambda)


def _walk_in_scope(node: ast.AST) -> Iterable[ast.AST]:
    """Walk a subtree without descending into nested function/class scopes."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, _SCOPE_BARRIERS):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


# ---------------------------------------------------------------------------
# replication classification
# ---------------------------------------------------------------------------
class _Env:
    """Name -> lattice level for one function scope (default: replicated).

    ``call_level`` is an optional hook ``(call, env) -> level | None`` used
    by the deep pass to classify calls to functions with known summaries;
    ``None`` falls back to the shallow max-over-subexpressions join.
    """

    def __init__(self, params: Sequence[str],
                 call_level: Callable[[ast.Call, "_Env"], int | None]
                 | None = None):
        self.levels: dict[str, int] = {}
        self.call_level = call_level
        for p in params:
            # A parameter literally named "rank" carries the rank id.
            self.levels[p] = RANK_DEPENDENT if p == "rank" else REPLICATED

    def get(self, name: str) -> int:
        return self.levels.get(name, REPLICATED)

    def join(self, name: str, level: int) -> None:
        self.levels[name] = max(self.levels.get(name, REPLICATED), level)


def _classify(node: ast.AST | None, env: _Env) -> int:
    """Lattice level of an expression (monotone max over sub-expressions)."""
    if node is None:
        return REPLICATED
    if isinstance(node, ast.Constant):
        return REPLICATED
    if isinstance(node, ast.Name):
        return env.get(node.id)
    if isinstance(node, ast.Attribute):
        if node.attr == "rank":
            return RANK_DEPENDENT
        if node.attr == "size" and _is_comm_expr(node.value):
            return REPLICATED
        return _classify(node.value, env)
    if isinstance(node, ast.Call):
        op = _collective_op(node)
        if op is not None:
            # Replicated results stay replicated regardless of their inputs.
            return (REPLICATED if op in UNIFORM_RESULT else RANK_LOCAL)
        if env.call_level is not None:
            known = env.call_level(node, env)
            if known is not None:
                return known
        level = _classify(node.func, env)
        for arg in node.args:
            level = max(level, _classify(arg, env))
        for kw in node.keywords:
            level = max(level, _classify(kw.value, env))
        return level
    if isinstance(node, ast.Lambda):
        return REPLICATED
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                         ast.DictComp)):
        level = REPLICATED
        for gen in node.generators:
            it_level = _classify(gen.iter, env)
            level = max(level, it_level)
            for name in _target_names(gen.target):
                env.join(name, it_level)
            for cond in gen.ifs:
                level = max(level, _classify(cond, env))
        if isinstance(node, ast.DictComp):
            level = max(level, _classify(node.key, env),
                        _classify(node.value, env))
        else:
            level = max(level, _classify(node.elt, env))
        return level
    if isinstance(node, ast.NamedExpr):
        level = _classify(node.value, env)
        for name in _target_names(node.target):
            env.join(name, level)
        return level
    level = REPLICATED
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.expr, ast.keyword)):
            level = max(level, _classify(child, env))
    return level


def _infer_env(fn: ast.AST, params: Sequence[str],
               call_level: Callable[[ast.Call, _Env], int | None]
               | None = None,
               overrides: dict[str, int] | None = None) -> _Env:
    """Fixpoint pass over assignments so taint flows through name chains.

    ``overrides`` pins selected names to a starting level — the summary
    builder uses it to taint one parameter at a time and observe where the
    taint flows.
    """
    env = _Env(params, call_level=call_level)
    if overrides:
        env.levels.update(overrides)
    for _ in range(8):
        before = dict(env.levels)
        for node in _walk_in_scope(fn):
            if isinstance(node, ast.Assign):
                level = _classify(node.value, env)
                for tgt in node.targets:
                    for name in _target_names(tgt):
                        env.join(name, level)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                level = _classify(node.value, env)
                for name in _target_names(node.target):
                    env.join(name, level)
            elif isinstance(node, ast.AugAssign):
                level = _classify(node.value, env)
                for name in _target_names(node.target):
                    env.join(name, level)
            elif isinstance(node, ast.For):
                level = _classify(node.iter, env)
                for name in _target_names(node.target):
                    env.join(name, level)
            elif isinstance(node, ast.withitem):
                if node.optional_vars is not None:
                    level = _classify(node.context_expr, env)
                    for name in _target_names(node.optional_vars):
                        env.join(name, level)
        if overrides:
            env.levels.update(overrides)
        if env.levels == before:
            break
    return env
