"""Command-line interface: ``python -m repro <command>``.

Wraps the library's end-to-end pipeline as a tool:

* ``generate`` — synthesize a Table-I stand-in (or raw R-MAT/ER/web graph)
  into the binary edge-list format;
* ``convert`` — SNAP-style text ↔ binary edge lists;
* ``info`` — file and degree statistics of a binary edge list;
* ``partition`` — score vertex-block / edge-block / random / PuLP
  partitionings of a graph;
* ``analyze`` — run any subset of the analytics over a binary edge list on
  ``--ranks`` SPMD ranks and print a report.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

__all__ = ["main"]


# ---------------------------------------------------------------------------
# subcommand: generate
# ---------------------------------------------------------------------------
def _cmd_generate(args: argparse.Namespace) -> int:
    from .generators import (
        dataset_names,
        erdos_renyi_edges,
        load_dataset,
        rmat_edges,
        webcrawl_edges,
    )
    from .io import write_edges

    if args.kind in dataset_names():
        edges = load_dataset(args.kind, scale=args.scale, seed=args.seed)
    elif args.kind == "rmat-raw":
        scale = int(np.ceil(np.log2(max(2, args.n))))
        edges = rmat_edges(scale, m=int(args.degree * args.n), seed=args.seed)
    elif args.kind == "er-raw":
        edges = erdos_renyi_edges(args.n, int(args.degree * args.n),
                                  seed=args.seed)
    elif args.kind == "web-raw":
        edges = webcrawl_edges(args.n, avg_degree=args.degree, seed=args.seed)
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(args.kind)
    nbytes = write_edges(args.output, edges, width=args.width)
    n = int(edges.max()) + 1 if len(edges) else 0
    print(f"wrote {args.output}: {len(edges):,} edges, "
          f"max vertex id {n - 1}, {nbytes / 1e6:.1f} MB")
    return 0


# ---------------------------------------------------------------------------
# subcommand: convert
# ---------------------------------------------------------------------------
def _cmd_convert(args: argparse.Namespace) -> int:
    from .io import read_edges, text_to_binary, write_text_edges

    src, dst = Path(args.input), Path(args.output)
    if args.to == "binary":
        m = text_to_binary(src, dst, width=args.width)
    else:
        edges = read_edges(src, width=args.width)
        write_text_edges(dst, edges)
        m = len(edges)
    print(f"converted {m:,} edges: {src} -> {dst}")
    return 0


# ---------------------------------------------------------------------------
# subcommand: info
# ---------------------------------------------------------------------------
def _cmd_info(args: argparse.Namespace) -> int:
    from .io import count_edges, read_edges

    m = count_edges(args.input, width=args.width)
    edges = read_edges(args.input, width=args.width)
    n = int(edges.max()) + 1 if m else 0
    out_deg = np.bincount(edges[:, 0], minlength=n)
    in_deg = np.bincount(edges[:, 1], minlength=n)
    print(f"{args.input}")
    print(f"  edges:        {m:,}")
    print(f"  vertices:     {n:,} (max id + 1)")
    if n:
        print(f"  avg degree:   {m / n:.2f}")
        print(f"  max out-deg:  {out_deg.max():,}")
        print(f"  max in-deg:   {in_deg.max():,}")
        total = out_deg + in_deg
        print(f"  isolated:     {(total == 0).sum():,} "
              f"({100 * (total == 0).mean():.1f}%)")
    return 0


# ---------------------------------------------------------------------------
# subcommand: partition
# ---------------------------------------------------------------------------
def _cmd_partition(args: argparse.Namespace) -> int:
    from .io import read_edges
    from .partition import (
        EdgeBlockPartition,
        RandomHashPartition,
        VertexBlockPartition,
        evaluate_partition,
        pulp_partition,
    )

    edges = read_edges(args.input, width=args.width)
    n = int(edges.max()) + 1 if len(edges) else 1
    degrees = np.bincount(edges[:, 0], minlength=n).astype(np.int64)
    parts = {
        "vertex-block": VertexBlockPartition(n, args.parts),
        "edge-block": EdgeBlockPartition(degrees, args.parts),
        "random": RandomHashPartition(n, args.parts, seed=args.seed),
    }
    if args.pulp:
        parts["pulp"] = pulp_partition(edges, n, args.parts, seed=args.seed)
    print(f"{'strategy':<14} {'vtx imbal':>10} {'edge imbal':>11} "
          f"{'cut frac':>9} {'max ghosts':>11}")
    for name, part in parts.items():
        st = evaluate_partition(part, edges)
        print(f"{name:<14} {st.vertex_imbalance:>10.3f} "
              f"{st.edge_imbalance:>11.3f} {st.cut_fraction:>9.3f} "
              f"{int(st.ghost_counts.max()):>11,}")
    return 0


# ---------------------------------------------------------------------------
# subcommand: analyze
# ---------------------------------------------------------------------------
ANALYTIC_CHOICES = ("pagerank", "labelprop", "wcc", "scc", "harmonic",
                    "kcore", "sssp", "triangles", "diameter", "hits",
                    "closeness", "betweenness")


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analytics import (
        HaloExchange,
        approx_kcore,
        betweenness_centrality,
        closeness_centrality,
        estimate_diameter,
        harmonic_centrality,
        hits,
        label_propagation,
        largest_scc,
        pagerank,
        sssp,
        top_degree_vertices,
        triangle_count,
        wcc,
    )
    from .graph import build_dist_graph
    from .io import striped_read
    from .partition import (
        EdgeBlockPartition,
        RandomHashPartition,
        VertexBlockPartition,
    )
    from .runtime import SUM, run_spmd

    which = args.analytics or list(ANALYTIC_CHOICES)
    from .io import count_edges, read_edge_range

    # Determine n without loading everything twice.
    m = count_edges(args.input, width=args.width)
    n = 0
    for lo in range(0, m, 1 << 20):
        chunk = read_edge_range(args.input, lo, min(1 << 20, m - lo),
                                width=args.width)
        n = max(n, int(chunk.max()) + 1 if len(chunk) else 0)

    def job(comm):
        chunk, _ = striped_read(comm, args.input, width=args.width)
        if args.partition == "vblock":
            part = VertexBlockPartition(n, comm.size)
        elif args.partition == "eblock":
            part = EdgeBlockPartition.from_edge_chunks(comm, chunk[:, 0], n)
        else:
            part = RandomHashPartition(n, comm.size, seed=7)
        g = build_dist_graph(comm, chunk, part)
        halo = HaloExchange(comm, g)
        report: list[tuple[str, float, str]] = []

        def run(name, fn):
            comm.barrier()
            t0 = time.perf_counter()
            summary = fn()
            comm.barrier()
            report.append((name, time.perf_counter() - t0, summary))

        hub = int(top_degree_vertices(comm, g, 1)[0]) if n else 0
        if "pagerank" in which:
            def _pr():
                s = pagerank(comm, g, max_iters=args.iters, halo=halo)
                total = comm.allreduce(float(s.scores.sum()), SUM)
                return f"sum={total:.6f}"
            run("pagerank", _pr)
        if "labelprop" in which:
            def _lp():
                from .analysis import label_counts

                r = label_propagation(comm, g, n_iters=args.iters, halo=halo)
                keys, _ = label_counts(comm, r.labels)
                return f"{len(keys)} communities"
            run("labelprop", _lp)
        if "wcc" in which:
            def _wcc():
                r = wcc(comm, g, halo=halo)
                giant = comm.allreduce(
                    int((r.labels == r.giant_label).sum()), SUM)
                return f"giant={giant}"
            run("wcc", _wcc)
        if "scc" in which:
            run("scc", lambda: f"largest={largest_scc(comm, g, halo=halo).size}")
        if "harmonic" in which:
            run("harmonic",
                lambda: f"hc({hub})={harmonic_centrality(comm, g, hub).score:.2f}")
        if "kcore" in which:
            run("kcore", lambda: f"stages={approx_kcore(comm, g, halo=halo).stages_run}")
        if "sssp" in which:
            run("sssp", lambda: f"reached={sssp(comm, g, hub, halo=halo).reached}")
        if "triangles" in which:
            run("triangles", lambda: f"total={triangle_count(comm, g, halo=halo).total}")
        if "diameter" in which:
            run("diameter",
                lambda: f">= {estimate_diameter(comm, g).lower_bound}")
        if "hits" in which:
            run("hits", lambda: f"iters={hits(comm, g, max_iters=args.iters, halo=halo).n_iters}")
        if "closeness" in which:
            run("closeness",
                lambda: f"cc({hub})={closeness_centrality(comm, g, hub).score:.4f}")
        if "betweenness" in which:
            run("betweenness",
                lambda: f"sampled k=4, sources={betweenness_centrality(comm, g, k=min(4, max(1, n)), halo=halo).n_sources}")
        return report

    t0 = time.perf_counter()
    report = run_spmd(args.ranks, job)[0]
    wall = time.perf_counter() - t0
    print(f"{args.input}: n={n:,}, m={m:,}, {args.ranks} ranks, "
          f"{args.partition} partitioning")
    for name, dt, summary in report:
        print(f"  {name:<12} {dt:8.3f} s   {summary}")
    print(f"  {'TOTAL':<12} {wall:8.3f} s (incl. ingest + build)")
    return 0


# ---------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    from .generators import dataset_names

    p = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = p.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="synthesize a graph to a binary file")
    g.add_argument("kind", choices=list(dataset_names()) +
                   ["rmat-raw", "er-raw", "web-raw"])
    g.add_argument("output", type=Path)
    g.add_argument("--scale", type=float, default=1.0)
    g.add_argument("--n", type=int, default=10_000)
    g.add_argument("--degree", type=float, default=16.0)
    g.add_argument("--seed", type=int, default=1)
    g.add_argument("--width", type=int, default=32, choices=(32, 64))
    g.set_defaults(fn=_cmd_generate)

    c = sub.add_parser("convert", help="convert text <-> binary edge lists")
    c.add_argument("input", type=Path)
    c.add_argument("output", type=Path)
    c.add_argument("--to", choices=("binary", "text"), default="binary")
    c.add_argument("--width", type=int, default=32, choices=(32, 64))
    c.set_defaults(fn=_cmd_convert)

    i = sub.add_parser("info", help="inspect a binary edge list")
    i.add_argument("input", type=Path)
    i.add_argument("--width", type=int, default=32, choices=(32, 64))
    i.set_defaults(fn=_cmd_info)

    q = sub.add_parser("partition", help="score partitioning strategies")
    q.add_argument("input", type=Path)
    q.add_argument("--parts", type=int, default=8)
    q.add_argument("--seed", type=int, default=1)
    q.add_argument("--pulp", action="store_true",
                   help="also run the PuLP-style partitioner")
    q.add_argument("--width", type=int, default=32, choices=(32, 64))
    q.set_defaults(fn=_cmd_partition)

    a = sub.add_parser("analyze", help="run analytics over a binary file")
    a.add_argument("input", type=Path)
    a.add_argument("--ranks", type=int, default=4)
    a.add_argument("--partition", choices=("vblock", "eblock", "rand"),
                   default="vblock")
    a.add_argument("--iters", type=int, default=10)
    a.add_argument("--analytics", nargs="*", choices=ANALYTIC_CHOICES,
                   help="subset to run (default: all)")
    a.add_argument("--width", type=int, default=32, choices=(32, 64))
    a.set_defaults(fn=_cmd_analyze)

    return p


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
