"""Command-line interface: ``python -m repro <command>``.

Wraps the library's end-to-end pipeline as a tool:

* ``generate`` — synthesize a Table-I stand-in (or raw R-MAT/ER/web graph)
  into the binary edge-list format;
* ``convert`` — SNAP-style text ↔ binary edge lists;
* ``info`` — file and degree statistics of a binary edge list;
* ``partition`` — score vertex-block / edge-block / random / PuLP
  partitionings of a graph;
* ``analyze`` — run any subset of the analytics over a binary edge list on
  ``--ranks`` SPMD ranks and print a report (``--checkpoint DIR`` reloads
  a saved graph instead of rebuilding; ``--save-checkpoint DIR`` writes
  one);
* ``serve`` — start the persistent analytics engine over one resident
  graph and drive it with a query script (see ``repro.service``);
* ``check`` — run the static SPMD-correctness passes (schedule rules
  SPMD001–005 plus buffer-ownership rules SPMD006–008, see
  ``repro.check``) over Python sources; ``--strict`` makes unsuppressed
  findings fail the process, ``--format json`` emits machine-readable
  output and ``--format github`` emits workflow ``::error`` annotations.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

__all__ = ["main"]


def _resolve_backend(name: str | None):
    """Validate a backend selection (``--backend`` or ``$REPRO_BACKEND``).

    Returns the resolved backend name, or ``None`` after printing an
    actionable error (listing the backends that *are* available here).
    """
    from .runtime import SpmdLaunchError, get_backend

    try:
        return get_backend(name).name
    except SpmdLaunchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


# ---------------------------------------------------------------------------
# subcommand: generate
# ---------------------------------------------------------------------------
def _cmd_generate(args: argparse.Namespace) -> int:
    from .generators import (
        dataset_names,
        erdos_renyi_edges,
        load_dataset,
        rmat_edges,
        webcrawl_edges,
    )
    from .io import write_edges

    if args.kind in dataset_names():
        edges = load_dataset(args.kind, scale=args.scale, seed=args.seed)
    elif args.kind == "rmat-raw":
        scale = int(np.ceil(np.log2(max(2, args.n))))
        edges = rmat_edges(scale, m=int(args.degree * args.n), seed=args.seed)
    elif args.kind == "er-raw":
        edges = erdos_renyi_edges(args.n, int(args.degree * args.n),
                                  seed=args.seed)
    elif args.kind == "web-raw":
        edges = webcrawl_edges(args.n, avg_degree=args.degree, seed=args.seed)
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(args.kind)
    nbytes = write_edges(args.output, edges, width=args.width)
    n = int(edges.max()) + 1 if len(edges) else 0
    print(f"wrote {args.output}: {len(edges):,} edges, "
          f"max vertex id {n - 1}, {nbytes / 1e6:.1f} MB")
    return 0


# ---------------------------------------------------------------------------
# subcommand: convert
# ---------------------------------------------------------------------------
def _cmd_convert(args: argparse.Namespace) -> int:
    from .io import read_edges, text_to_binary, write_text_edges

    src, dst = Path(args.input), Path(args.output)
    if args.to == "binary":
        m = text_to_binary(src, dst, width=args.width)
    else:
        edges = read_edges(src, width=args.width)
        write_text_edges(dst, edges)
        m = len(edges)
    print(f"converted {m:,} edges: {src} -> {dst}")
    return 0


# ---------------------------------------------------------------------------
# subcommand: info
# ---------------------------------------------------------------------------
def _cmd_info(args: argparse.Namespace) -> int:
    from .io import count_edges, read_edges

    m = count_edges(args.input, width=args.width)
    edges = read_edges(args.input, width=args.width)
    n = int(edges.max()) + 1 if m else 0
    out_deg = np.bincount(edges[:, 0], minlength=n)
    in_deg = np.bincount(edges[:, 1], minlength=n)
    print(f"{args.input}")
    print(f"  edges:        {m:,}")
    print(f"  vertices:     {n:,} (max id + 1)")
    if n:
        print(f"  avg degree:   {m / n:.2f}")
        print(f"  max out-deg:  {out_deg.max():,}")
        print(f"  max in-deg:   {in_deg.max():,}")
        total = out_deg + in_deg
        print(f"  isolated:     {(total == 0).sum():,} "
              f"({100 * (total == 0).mean():.1f}%)")
    return 0


# ---------------------------------------------------------------------------
# subcommand: partition
# ---------------------------------------------------------------------------
def _cmd_partition(args: argparse.Namespace) -> int:
    from .io import read_edges
    from .partition import (
        EdgeBlockPartition,
        RandomHashPartition,
        VertexBlockPartition,
        evaluate_partition,
        pulp_partition,
    )

    edges = read_edges(args.input, width=args.width)
    n = int(edges.max()) + 1 if len(edges) else 1
    degrees = np.bincount(edges[:, 0], minlength=n).astype(np.int64)
    parts = {
        "vertex-block": VertexBlockPartition(n, args.parts),
        "edge-block": EdgeBlockPartition(degrees, args.parts),
        "random": RandomHashPartition(n, args.parts, seed=args.seed),
    }
    if args.pulp:
        parts["pulp"] = pulp_partition(edges, n, args.parts, seed=args.seed)
    print(f"{'strategy':<14} {'vtx imbal':>10} {'edge imbal':>11} "
          f"{'cut frac':>9} {'max ghosts':>11}")
    for name, part in parts.items():
        st = evaluate_partition(part, edges)
        print(f"{name:<14} {st.vertex_imbalance:>10.3f} "
              f"{st.edge_imbalance:>11.3f} {st.cut_fraction:>9.3f} "
              f"{int(st.ghost_counts.max()):>11,}")
    return 0


# ---------------------------------------------------------------------------
# subcommand: analyze
# ---------------------------------------------------------------------------
ANALYTIC_CHOICES = ("pagerank", "labelprop", "wcc", "scc", "harmonic",
                    "kcore", "sssp", "triangles", "diameter", "hits",
                    "closeness", "betweenness")


def _analyze_job(comm, cfg: dict):
    """SPMD body of ``repro analyze`` (module-level: pickles by reference
    onto process-backed ranks; ``cfg`` is a plain picklable dict)."""
    from .analytics import (
        HaloExchange,
        approx_kcore,
        betweenness_centrality,
        closeness_centrality,
        estimate_diameter,
        harmonic_centrality,
        hits,
        label_propagation,
        largest_scc,
        pagerank,
        sssp,
        top_degree_vertices,
        triangle_count,
        wcc,
    )
    from .graph import build_dist_graph
    from .io import striped_read
    from .io.checkpoint import load_graph, save_graph
    from .partition import (
        EdgeBlockPartition,
        RandomHashPartition,
        VertexBlockPartition,
    )
    from .runtime import LAND, SUM

    which = cfg["which"]
    n = cfg["n"]
    iters = cfg["iters"]
    path = Path(cfg["input"])
    width = cfg["width"]
    ckpt = Path(cfg["checkpoint"]) if cfg["checkpoint"] is not None else None
    save = Path(cfg["save_checkpoint"]) \
        if cfg["save_checkpoint"] is not None else None

    # A complete checkpoint skips reconstruction (and, except for the
    # data-dependent eblock partition, the edge read as well).
    have = (ckpt is not None and
            (ckpt / f"rank{comm.rank:05d}.npz").exists())
    from_ckpt = comm.allreduce(have, LAND)
    chunk = None
    if cfg["partition"] == "eblock" or not from_ckpt:
        chunk, _ = striped_read(comm, path, width=width)
    if cfg["partition"] == "vblock":
        part = VertexBlockPartition(n, comm.size)
    elif cfg["partition"] == "eblock":
        part = EdgeBlockPartition.from_edge_chunks(comm, chunk[:, 0], n)
    else:
        part = RandomHashPartition(n, comm.size, seed=7)
    if from_ckpt:
        g = load_graph(comm, ckpt, part)
    else:
        g = build_dist_graph(comm, chunk, part)
        if save is not None:
            save_graph(comm, g, save)
    halo = HaloExchange(comm, g)
    report: list[tuple[str, float, str]] = []

    def run(name, fn):
        comm.barrier()
        t0 = time.perf_counter()
        summary = fn()
        comm.barrier()
        report.append((name, time.perf_counter() - t0, summary))

    hub = int(top_degree_vertices(comm, g, 1)[0]) if n else 0
    if "pagerank" in which:
        def _pr():
            s = pagerank(comm, g, max_iters=iters, halo=halo)
            total = comm.allreduce(float(s.scores.sum()), SUM)
            return f"sum={total:.6f}"
        run("pagerank", _pr)
    if "labelprop" in which:
        def _lp():
            from .analysis import label_counts

            r = label_propagation(comm, g, n_iters=iters, halo=halo)
            keys, _ = label_counts(comm, r.labels)
            return f"{len(keys)} communities"
        run("labelprop", _lp)
    if "wcc" in which:
        def _wcc():
            r = wcc(comm, g, halo=halo)
            giant = comm.allreduce(
                int((r.labels == r.giant_label).sum()), SUM)
            return f"giant={giant}"
        run("wcc", _wcc)
    if "scc" in which:
        run("scc", lambda: f"largest={largest_scc(comm, g, halo=halo).size}")
    if "harmonic" in which:
        run("harmonic",
            lambda: f"hc({hub})={harmonic_centrality(comm, g, hub).score:.2f}")
    if "kcore" in which:
        run("kcore", lambda: f"stages={approx_kcore(comm, g, halo=halo).stages_run}")
    if "sssp" in which:
        run("sssp", lambda: f"reached={sssp(comm, g, hub, halo=halo).reached}")
    if "triangles" in which:
        run("triangles", lambda: f"total={triangle_count(comm, g, halo=halo).total}")
    if "diameter" in which:
        run("diameter",
            lambda: f">= {estimate_diameter(comm, g).lower_bound}")
    if "hits" in which:
        run("hits", lambda: f"iters={hits(comm, g, max_iters=iters, halo=halo).n_iters}")
    if "closeness" in which:
        run("closeness",
            lambda: f"cc({hub})={closeness_centrality(comm, g, hub).score:.4f}")
    if "betweenness" in which:
        run("betweenness",
            lambda: f"sampled k=4, sources={betweenness_centrality(comm, g, k=min(4, max(1, n)), halo=halo).n_sources}")
    return report, from_ckpt


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .io import count_edges, read_edge_range
    from .runtime import RankAborted, SpmdError, run_spmd

    backend = _resolve_backend(args.backend)
    if backend is None:
        return 2

    # Determine n without loading everything twice.
    m = count_edges(args.input, width=args.width)
    n = 0
    for lo in range(0, m, 1 << 20):
        chunk = read_edge_range(args.input, lo, min(1 << 20, m - lo),
                                width=args.width)
        n = max(n, int(chunk.max()) + 1 if len(chunk) else 0)

    cfg = {
        "input": str(args.input), "width": args.width, "n": n,
        "partition": args.partition, "iters": args.iters,
        "which": args.analytics or list(ANALYTIC_CHOICES),
        "checkpoint":
            None if args.checkpoint is None else str(args.checkpoint),
        "save_checkpoint":
            None if args.save_checkpoint is None
            else str(args.save_checkpoint),
    }
    t0 = time.perf_counter()
    timeout = args.timeout if args.timeout > 0 else None
    try:
        report, from_ckpt = run_spmd(args.ranks, _analyze_job, cfg,
                                     timeout=timeout, backend=backend)[0]
    except SpmdError as exc:
        only_aborts = all(isinstance(e, RankAborted)
                          for e in exc.failures.values())
        if timeout is not None and only_aborts:
            print(f"error: analysis exceeded --timeout {args.timeout:g}s "
                  f"and was aborted", file=sys.stderr)
            return 1
        raise
    wall = time.perf_counter() - t0
    source = "checkpoint" if from_ckpt else "built"
    print(f"{args.input}: n={n:,}, m={m:,}, {args.ranks} ranks, "
          f"{args.partition} partitioning, graph {source}")
    for name, dt, summary in report:
        print(f"  {name:<12} {dt:8.3f} s   {summary}")
    print(f"  {'TOTAL':<12} {wall:8.3f} s (incl. ingest + build)")
    return 0


# ---------------------------------------------------------------------------
# subcommand: serve
# ---------------------------------------------------------------------------
#: Default mixed workload when no --queries script is given.
_DEFAULT_QUERIES = """\
pagerank
wcc
bfs 0
bfs 1
bfs 2
closeness 0
ppr 0
ppr 1
triangles
pagerank
bfs 0
"""


def _parse_query_line(line: str) -> tuple[str, dict] | None:
    """``"bfs 17 direction=out"`` → ``("bfs", {"source": 17, ...})``."""
    line = line.split("#", 1)[0].strip()
    if not line:
        return None
    from .service import SERVING_KINDS

    tokens = line.split()
    kind, rest = tokens[0], tokens[1:]
    if kind not in SERVING_KINDS:
        raise ValueError(
            f"unknown analytic {kind!r} in {line!r}; "
            f"expected one of: {', '.join(sorted(SERVING_KINDS))}")
    positional = {"bfs": "source", "closeness": "vertex", "ppr": "seed"}
    params: dict = {}
    for tok in rest:
        if "=" in tok:
            key, val = tok.split("=", 1)
            try:
                parsed: object = int(val)
            except ValueError:
                try:
                    parsed = float(val)
                except ValueError:
                    parsed = val
            params[key] = parsed
        elif kind in positional and positional[kind] not in params:
            try:
                params[positional[kind]] = int(tok)
            except ValueError:
                raise ValueError(
                    f"expected an integer {positional[kind]} for {kind}, "
                    f"got {tok!r} in {line!r}") from None
        else:
            raise ValueError(f"cannot parse query token {tok!r} in {line!r}")
    return kind, params


def _summarize_result(kind: str, res) -> str:
    if kind == "pagerank":
        return f"sum={res['scores'].sum():.6f} iters={res['n_iters']}"
    if kind == "wcc":
        return f"giant={res['giant_size']} components={res['n_components']}"
    if kind == "triangles":
        return f"total={res['total']} clustering={res['global_clustering']:.4f}"
    if kind == "bfs":
        return f"reached={res['reached']} max_level={res['max_level']}"
    if kind == "closeness":
        return f"cc({res['vertex']})={res['score']:.4f}"
    if kind == "ppr":
        return f"top={int(res['scores'].argmax())} iters={res['n_iters']}"
    return str(res)


def _serve_group(args: argparse.Namespace, queries: list,
                 backend: str) -> int:
    """``repro serve --replicas N``: the replicated serving tier."""
    import json

    from .serve import ReplicaGroup, ShedError

    t0 = time.perf_counter()
    group = ReplicaGroup(
        args.ranks, replicas=args.replicas,
        max_inflight=args.max_inflight,
        snapshot_reads=args.snapshot_reads,
        path=args.input, width=args.width, partition=args.partition,
        checkpoint=args.checkpoint, save_checkpoint=args.save_checkpoint,
        max_pending=args.max_pending, batch_window=args.batch_window,
        cache_capacity=args.cache, default_timeout=args.timeout,
        backend=backend,
    )
    build_s = time.perf_counter() - t0
    eng0 = group.replicas[0].engine
    print(f"replica group up: {args.replicas} replicas x {args.ranks} "
          f"ranks ({eng0.backend}), n={eng0.n_global:,}, "
          f"m={eng0.m_global:,}, {args.partition} partitioning, "
          f"snapshot reads {'on' if args.snapshot_reads else 'off'}, "
          f"built in {build_s:.3f} s")
    try:
        # Live update feed: split the update file into batches and
        # interleave them with the query stream (wait='none' — replicas
        # catch up by replaying the shared log while queries keep going).
        batches = []
        if args.updates is not None:
            from .stream import read_updates_text, split_batch

            whole = read_updates_text(args.updates)
            size = args.update_batch or whole.n or 1
            batches = split_batch(whole, size) if whole.n else []
        feed_every = (max(1, len(queries) // len(batches))
                      if batches else None)

        tickets: list = []
        sheds = 0

        def drain():
            # In-flight slots (and snapshot leases) are released at
            # result(): reaping tickets is what opens admission back up
            # after a shed.
            for ticket, kind in tickets:
                res = group.result(ticket, timeout=args.timeout)
                lat = time.monotonic() - ticket.t_submit
                epoch = ("live" if ticket.at_epoch is None
                         else f"E{ticket.at_epoch}")
                print(f"  {kind:<10} {lat * 1e3:9.2f} ms  "
                      f"[rep {ticket.replica_id}|{epoch:>5}]  "
                      f"{_summarize_result(kind, res)}")
            tickets.clear()

        t0 = time.perf_counter()
        for i, (kind, params) in enumerate(queries):
            if feed_every is not None and i % feed_every == 0 and batches:
                b = batches.pop(0)
                out = group.apply_updates(b.src, b.dst, b.op, b.values,
                                          wait="none")
                print(f"  fed update batch seq {out['seq']} "
                      f"({out['n_updates']} updates)")
            while True:
                try:
                    tickets.append((group.submit(kind, **params), kind))
                    break
                except ShedError as exc:
                    sheds += 1
                    if tickets:
                        drain()  # free slots + leases, then retry
                    else:
                        time.sleep(min(0.5, exc.retry_after_s))
        for b in batches:  # leftovers (more batches than queries)
            group.apply_updates(b.src, b.dst, b.op, b.values, wait="none")
        drain()
        serve_s = time.perf_counter() - t0
        if not group.sync(timeout=args.timeout):
            print("warning: replicas did not converge before timeout",
                  file=sys.stderr)
        status = group.status()
        nq = len(queries)
        print(f"served {nq} queries in {serve_s:.3f} s "
              f"({serve_s / max(nq, 1) * 1e3:.2f} ms/query amortized; "
              f"{sheds} sheds; cold build was {build_s:.3f} s)")
        if args.status_json:
            print(json.dumps(status, indent=2))
        else:
            r, lg = status["router"], status["log"]
            ct = status["cache_totals"]
            print(f"  router: {r['routed']} routed "
                  f"({r['point']} point / {r['global']} global), "
                  f"{r['spills']} spills, {r['sheds']} sheds")
            print(f"  log: {lg['appended']} batches appended, "
                  f"head seq {lg['head_seq']}, "
                  f"{lg['retained']} retained")
            print(f"  cache totals: {ct['hits']} hits / {ct['misses']} "
                  f"misses, {ct['evictions']} evicted, "
                  f"{ct['invalidations']} invalidated")
            for rs in status["per_replica"]:
                c = rs["cache"]
                pins = sum(rs["snapshots"]["pinned"].values())
                print(f"  replica {rs['id']}: epoch {rs['epoch']}, "
                      f"seq {rs['applied_seq']}, "
                      f"{rs['jobs']['completed']} jobs, cache "
                      f"{c['hits']}h/{c['misses']}m/{c['evictions']}e/"
                      f"{c['invalidations']}i "
                      f"(rate {c['hit_rate']:.0%}), {pins} pins, "
                      f"ewma {rs['ewma_latency_s'] * 1e3:.1f} ms")
    finally:
        group.shutdown()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from .service import AdmissionError, AnalyticsEngine

    backend = _resolve_backend(args.backend)
    if backend is None:
        return 2
    if args.queries is None:
        text = _DEFAULT_QUERIES
    elif str(args.queries) == "-":
        text = sys.stdin.read()
    else:
        text = Path(args.queries).read_text()
    try:
        queries = [q for q in
                   (_parse_query_line(ln) for ln in text.splitlines())
                   if q is not None]
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    queries = queries * args.repeat

    if args.replicas > 1:
        return _serve_group(args, queries, backend)

    t0 = time.perf_counter()
    engine = AnalyticsEngine(
        args.ranks, path=args.input, width=args.width,
        partition=args.partition,
        checkpoint=args.checkpoint, save_checkpoint=args.save_checkpoint,
        max_pending=args.max_pending, batch_window=args.batch_window,
        cache_capacity=args.cache, default_timeout=args.timeout,
        backend=backend,
    )
    build_s = time.perf_counter() - t0
    print(f"engine up: n={engine.n_global:,}, m={engine.m_global:,}, "
          f"{args.ranks} ranks ({engine.backend}), "
          f"{args.partition} partitioning, "
          f"graph {engine.built_from} in {build_s:.3f} s "
          f"[fingerprint {engine.fingerprint}]")
    try:
        pending: list[tuple[int, str]] = []

        def drain():
            for job_id, kind in pending:
                job = engine.job(job_id)
                res = engine.result(job_id)
                lat = job.latency_s or 0.0
                tag = "cache" if job.cached else "ran"
                print(f"  {kind:<10} {lat * 1e3:9.2f} ms  [{tag:>5}]  "
                      f"{_summarize_result(kind, res)}")
            pending.clear()

        def run_workload() -> float:
            t0 = time.perf_counter()
            for kind, params in queries:
                while True:
                    try:
                        pending.append((engine.submit(kind, **params), kind))
                        break
                    except AdmissionError:
                        drain()  # backlog full: consume results, then retry
            drain()
            return time.perf_counter() - t0

        serve_s = run_workload()
        if args.updates is not None:
            # Live mutation: apply the update batch, then replay the same
            # workload against the new epoch (shows invalidation at work).
            from .stream import read_updates_text

            batch = read_updates_text(args.updates)
            out = engine.apply_updates(batch.src, batch.dst, batch.op,
                                       batch.values)
            print(f"applied {batch.n} updates: epoch {out['epoch']}, "
                  f"+{out['n_inserted']} -{out['n_deleted']} "
                  f"(missing {out['n_missing']}), m={out['m_global']:,} "
                  f"[fingerprint {engine.fingerprint}]")
            serve_s += run_workload()
        status = engine.status()
        nq = len(queries) * (2 if args.updates is not None else 1)
        print(f"served {nq} queries in {serve_s:.3f} s "
              f"({serve_s / max(nq, 1) * 1e3:.2f} ms/query amortized; "
              f"cold build was {build_s:.3f} s)")
        if args.status_json:
            print(json.dumps(status, indent=2))
        else:
            j, c, m = status["jobs"], status["cache"], status["comm"]
            print(f"  jobs: {j['completed']} completed, {j['failed']} failed, "
                  f"{j['batches']} dispatches "
                  f"(largest batch {j['max_batch_size']})")
            print(f"  cache: {c['hits']} hits / {c['misses']} misses "
                  f"(rate {c['hit_rate']:.0%}), {c['evictions']} evicted, "
                  f"{c['invalidations']} invalidated, "
                  f"{c['size']}/{c['capacity']} entries")
            print(f"  comm: {m['bytes_sent'] / 1e6:.2f} MB sent over "
                  f"{m['n_collectives']} collectives, "
                  f"idle {m['idle_s']:.3f} s, xfer {m['comm_s']:.3f} s")
    finally:
        engine.shutdown()
    return 0


# ---------------------------------------------------------------------------
# subcommand: stream-apply
# ---------------------------------------------------------------------------
def _stream_apply_job(comm, cfg: dict):
    """SPMD body of ``repro stream-apply`` (module-level for procs)."""
    from .graph import build_dist_graph
    from .io import striped_read
    from .partition import RandomHashPartition, VertexBlockPartition
    from .stream import (
        DynamicDistGraph,
        IncrementalPageRank,
        IncrementalWCC,
        UpdateBatch,
    )

    n = cfg["n"]
    chunk, _ = striped_read(comm, Path(cfg["input"]), width=cfg["width"])
    if cfg["partition"] == "vblock":
        part = VertexBlockPartition(n, comm.size)
    else:
        part = RandomHashPartition(n, comm.size, seed=7)
    g = build_dist_graph(comm, chunk, part)
    dyn = DynamicDistGraph(comm, g)
    ipr = IncrementalPageRank(comm, dyn, max_iters=cfg["iters"])
    iwcc = IncrementalWCC(comm, dyn)
    log = []
    for b in cfg["batches"]:
        sl = np.array_split(np.arange(b.n), comm.size)[comm.rank]
        my = UpdateBatch(b.src[sl], b.dst[sl], b.op[sl],
                         b.values[sl] if b.values is not None else None)
        comm.barrier()
        t0 = time.perf_counter()
        res = dyn.apply(my)
        t_apply = time.perf_counter() - t0
        t0 = time.perf_counter()
        pr = ipr.run()
        t_pr = time.perf_counter() - t0
        w = iwcc.run()
        log.append((res, t_apply, t_pr, pr.n_iters, w.mode))
    return log, dict(ipr.stats)


def _cmd_stream_apply(args: argparse.Namespace) -> int:
    from .io import count_edges, read_edge_range
    from .runtime import run_spmd
    from .stream import read_updates_text, split_batch

    backend = _resolve_backend(args.backend)
    if backend is None:
        return 2

    m = count_edges(args.input, width=args.width)
    n = 0
    for lo in range(0, m, 1 << 20):
        chunk = read_edge_range(args.input, lo, min(1 << 20, m - lo),
                                width=args.width)
        n = max(n, int(chunk.max()) + 1 if len(chunk) else 0)
    updates = read_updates_text(args.updates)
    if updates.n:
        # Updates may introduce vertices beyond the base file's id range.
        n = max(n, int(updates.src.max()) + 1, int(updates.dst.max()) + 1)
    batches = (split_batch(updates, args.batch_size)
               if args.batch_size else [updates])

    cfg = {
        "input": str(args.input), "width": args.width, "n": n,
        "partition": args.partition, "iters": args.iters,
        "batches": batches,
    }
    t0 = time.perf_counter()
    log, pr_stats = run_spmd(args.ranks, _stream_apply_job, cfg,
                             timeout=args.timeout or None,
                             backend=backend)[0]
    wall = time.perf_counter() - t0
    print(f"{args.input}: n={n:,}, m={m:,}, {args.ranks} ranks; "
          f"{updates.n} updates in {len(batches)} batch(es)")
    for res, t_apply, t_pr, pr_iters, wcc_mode in log:
        print(f"  epoch {res.epoch}: +{res.n_inserted} -{res.n_deleted} "
              f"(missing {res.n_missing}) m={res.m_global:,} "
              f"apply {t_apply * 1e3:.1f} ms, pagerank {t_pr * 1e3:.1f} ms "
              f"({pr_iters} iters), wcc {wcc_mode}"
              f"{', compacted' if res.compacted else ''}")
    frac = pr_stats["rows_recomputed"] / max(1, pr_stats["rows_total"])
    print(f"  pagerank repair: {pr_stats['rows_recomputed']:,} of "
          f"{pr_stats['rows_total']:,} row-evaluations recomputed "
          f"({frac:.1%}); {pr_stats['full_runs']} full run(s); "
          f"total {wall:.3f} s")
    return 0


# ---------------------------------------------------------------------------
# subcommand: check
# ---------------------------------------------------------------------------
def _cmd_check(args: argparse.Namespace) -> int:
    from .check import RULES
    from .check.deep import (
        apply_baseline,
        deep_lint_paths,
        load_baseline,
        write_baseline,
    )
    from .check.fixer import fix_files, fixable
    from .check.spmdlint import (
        lint_paths,
        render_github,
        render_json,
        render_sarif,
        render_text,
    )

    paths = args.paths or [Path(__file__).resolve().parent]
    select = None
    if args.select:
        bad = [r for r in args.select if r not in RULES]
        if bad:
            print(f"error: unknown rule(s): {', '.join(bad)} "
                  f"(known: {', '.join(sorted(RULES))})", file=sys.stderr)
            return 2
        select = args.select

    def lint() -> list:
        if args.deep:
            return deep_lint_paths(paths, select=select, cache=args.cache)
        return lint_paths(paths, select=select)

    findings = lint()
    if args.write_baseline is not None:
        n = write_baseline(args.write_baseline, findings)
        print(f"spmdlint: wrote {n} grandfathered finding(s) to "
              f"{args.write_baseline}", file=sys.stderr)
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
        if baseline_path.exists():
            apply_baseline(findings, load_baseline(baseline_path))
        else:
            print(f"warning: baseline {baseline_path} not found; "
                  f"treating every finding as new", file=sys.stderr)
    if args.fix:
        dry = args.fix_check
        changed = fix_files(fixable(findings), dry_run=dry)
        n_edits = sum(changed.values())
        if dry:
            for path, n in sorted(changed.items()):
                print(f"spmdlint: would fix {n} finding(s) in {path}",
                      file=sys.stderr)
            if n_edits:
                print(f"spmdlint: --fix would change {len(changed)} "
                      f"file(s); run `repro check --fix` and commit",
                      file=sys.stderr)
                return 1
        elif n_edits:
            for path, n in sorted(changed.items()):
                print(f"spmdlint: fixed {n} finding(s) in {path}",
                      file=sys.stderr)
            # Re-lint so the report (and strict exit) reflects the
            # post-fix sources; mechanical findings must be gone.
            findings = lint()
            if args.baseline is not None and Path(args.baseline).exists():
                apply_baseline(findings, load_baseline(args.baseline))
    if args.format == "json":
        print(render_json(findings))
    elif args.format == "sarif":
        print(render_sarif(findings))
    elif args.format == "github":
        out = render_github(findings)
        if out:
            print(out)
    else:
        print(render_text(findings, show_suppressed=args.show_suppressed))
    fresh = sum(1 for f in findings if not f.suppressed and not f.baselined)
    return 1 if (args.strict and fresh) else 0


# ---------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    from .generators import dataset_names

    p = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = p.add_subparsers(dest="command", required=True)

    def add_backend(sp: argparse.ArgumentParser) -> None:
        # Validated by get_backend (not argparse choices) so the error
        # message can list what is actually available on this host.
        sp.add_argument("--backend", type=str, default=None,
                        metavar="{threads,procs,mpi}",
                        help="rank runtime backend (default: $REPRO_BACKEND "
                             "when set, else threads)")

    g = sub.add_parser("generate", help="synthesize a graph to a binary file")
    g.add_argument("kind", choices=list(dataset_names()) +
                   ["rmat-raw", "er-raw", "web-raw"])
    g.add_argument("output", type=Path)
    g.add_argument("--scale", type=float, default=1.0)
    g.add_argument("--n", type=int, default=10_000)
    g.add_argument("--degree", type=float, default=16.0)
    g.add_argument("--seed", type=int, default=1)
    g.add_argument("--width", type=int, default=32, choices=(32, 64))
    g.set_defaults(fn=_cmd_generate)

    c = sub.add_parser("convert", help="convert text <-> binary edge lists")
    c.add_argument("input", type=Path)
    c.add_argument("output", type=Path)
    c.add_argument("--to", choices=("binary", "text"), default="binary")
    c.add_argument("--width", type=int, default=32, choices=(32, 64))
    c.set_defaults(fn=_cmd_convert)

    i = sub.add_parser("info", help="inspect a binary edge list")
    i.add_argument("input", type=Path)
    i.add_argument("--width", type=int, default=32, choices=(32, 64))
    i.set_defaults(fn=_cmd_info)

    q = sub.add_parser("partition", help="score partitioning strategies")
    q.add_argument("input", type=Path)
    q.add_argument("--parts", type=int, default=8)
    q.add_argument("--seed", type=int, default=1)
    q.add_argument("--pulp", action="store_true",
                   help="also run the PuLP-style partitioner")
    q.add_argument("--width", type=int, default=32, choices=(32, 64))
    q.set_defaults(fn=_cmd_partition)

    a = sub.add_parser("analyze", help="run analytics over a binary file")
    a.add_argument("input", type=Path)
    a.add_argument("--ranks", type=int, default=4)
    a.add_argument("--partition", choices=("vblock", "eblock", "rand"),
                   default="vblock")
    a.add_argument("--iters", type=int, default=10)
    a.add_argument("--analytics", nargs="*", choices=ANALYTIC_CHOICES,
                   help="subset to run (default: all)")
    a.add_argument("--width", type=int, default=32, choices=(32, 64))
    a.add_argument("--timeout", type=float, default=120.0,
                   help="per-collective-wait timeout in seconds for the "
                        "SPMD world; 0 disables (default: 120)")
    a.add_argument("--checkpoint", type=Path, default=None,
                   help="load the graph from this checkpoint directory "
                        "when present (skips reconstruction)")
    a.add_argument("--save-checkpoint", type=Path, default=None,
                   help="write the freshly built graph to this directory")
    add_backend(a)
    a.set_defaults(fn=_cmd_analyze)

    s = sub.add_parser(
        "serve", help="serve analytics over one resident graph")
    s.add_argument("input", type=Path)
    s.add_argument("--ranks", type=int, default=4)
    s.add_argument("--partition", choices=("vblock", "eblock", "rand"),
                   default="vblock")
    s.add_argument("--queries", type=str, default=None,
                   help="query script file ('-' for stdin; default: a "
                        "built-in mixed workload). One query per line: "
                        "'pagerank', 'bfs 17', 'ppr 5 max_iters=30', ...")
    s.add_argument("--repeat", type=int, default=1,
                   help="run the workload this many times (shows caching)")
    s.add_argument("--checkpoint", type=Path, default=None,
                   help="load the graph from this checkpoint when present")
    s.add_argument("--save-checkpoint", type=Path, default=None,
                   help="write the built graph to this directory")
    s.add_argument("--timeout", type=float, default=60.0,
                   help="default per-job timeout in seconds")
    s.add_argument("--batch-window", type=float, default=0.02,
                   help="batching window seconds for coalescible queries")
    s.add_argument("--max-pending", type=int, default=64,
                   help="admission bound on queued jobs")
    s.add_argument("--cache", type=int, default=128,
                   help="result-cache capacity (0 disables)")
    s.add_argument("--updates", type=Path, default=None,
                   help="edge-update file ('[+|-] src dst [w]' per line); "
                        "applied after the first workload pass, then the "
                        "workload replays against the updated graph (with "
                        "--replicas N: fed live, interleaved with queries)")
    s.add_argument("--replicas", type=int, default=1,
                   help="serve through a replica group of this many engine "
                        "replicas (consistent-hash routing, admission "
                        "control, shared update log); 1 = single engine")
    s.add_argument("--max-inflight", type=int, default=8,
                   help="per-replica in-flight admission bound before the "
                        "router spills / sheds (replica group only)")
    s.add_argument("--snapshot-reads", action="store_true",
                   help="pin every read to its replica's current epoch "
                        "(MVCC snapshot isolation; replica group only)")
    s.add_argument("--update-batch", type=int, default=0,
                   help="split --updates into batches of this many updates "
                        "for live feeding (replica group only; 0 = one "
                        "batch)")
    s.add_argument("--status-json", action="store_true",
                   help="dump the final engine status as JSON")
    s.add_argument("--width", type=int, default=32, choices=(32, 64))
    add_backend(s)
    s.set_defaults(fn=_cmd_serve)

    t = sub.add_parser(
        "stream-apply",
        help="apply streaming edge updates with incremental analytics")
    t.add_argument("input", type=Path)
    t.add_argument("updates", type=Path,
                   help="text update file: '[+|-] src dst [weight]' per "
                        "line ('+' insert, '-' delete; '+' is the default)")
    t.add_argument("--ranks", type=int, default=4)
    t.add_argument("--partition", choices=("vblock", "rand"),
                   default="vblock")
    t.add_argument("--batch-size", type=int, default=0,
                   help="split the update file into batches of this many "
                        "updates (0 = one batch)")
    t.add_argument("--iters", type=int, default=10,
                   help="PageRank iterations per epoch")
    t.add_argument("--timeout", type=float, default=120.0,
                   help="per-collective-wait timeout seconds (0 disables)")
    t.add_argument("--width", type=int, default=32, choices=(32, 64))
    add_backend(t)
    t.set_defaults(fn=_cmd_stream_apply)

    k = sub.add_parser(
        "check", help="run the spmdlint SPMD-correctness static pass")
    k.add_argument("paths", nargs="*", type=Path,
                   help="files or directories to lint "
                        "(default: the installed repro package)")
    k.add_argument("--strict", action="store_true",
                   help="exit 1 when any unsuppressed, non-baselined "
                        "finding remains")
    k.add_argument("--deep", action="store_true",
                   help="whole-program pass: call-graph summaries make "
                        "SPMD001-005 interprocedural and enable "
                        "SPMD009-012")
    k.add_argument("--format", choices=("text", "json", "github", "sarif"),
                   default="text",
                   help="output style: human text, machine JSON (with rule "
                        "doc anchors and suppression syntax), GitHub "
                        "Actions ::error annotations, or SARIF 2.1.0")
    k.add_argument("--select", nargs="*", metavar="SPMDxxx",
                   help="restrict to these rule ids (default: all)")
    k.add_argument("--show-suppressed", action="store_true",
                   help="also list suppressed findings in text output")
    k.add_argument("--baseline", type=Path, default=None, metavar="FILE",
                   help="grandfather findings recorded in this baseline "
                        "file (new findings still fail --strict)")
    k.add_argument("--write-baseline", type=Path, default=None,
                   metavar="FILE",
                   help="record current unsuppressed findings as the "
                        "baseline and continue")
    k.add_argument("--cache", type=Path, default=None, metavar="FILE",
                   help="content-hash result cache for --deep (keyed on "
                        "file hash + summary-table digests + analyzer "
                        "ruleset digest)")
    k.add_argument("--fix", action="store_true",
                   help="apply the mechanical autofixes attached to "
                        "findings (SPMD013 unmap-wrap, PERF001/PERF003 "
                        "hoists), then re-lint and report the rest")
    k.add_argument("--check", "--fix-check", dest="fix_check",
                   action="store_true",
                   help="with --fix: dry run; exit 1 if --fix would "
                        "change any file (the CI drift gate)")
    k.set_defaults(fn=_cmd_check)

    return p


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
