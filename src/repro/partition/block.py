"""Vertex-block partitioning (paper §III-B, "WC-np").

Each rank receives a contiguous range of ``~n/p`` vertex ids in natural
ordering.  This retains whatever locality the input vertex numbering has
(for the web crawl, pages of a host are numbered together), at the cost of
potentially severe *edge* imbalance on skewed graphs.
"""

from __future__ import annotations

import numpy as np

from .base import Partition

__all__ = ["VertexBlockPartition"]


class VertexBlockPartition(Partition):
    """Contiguous equal-count vertex ranges.

    Rank ``r`` owns ids ``[boundaries[r], boundaries[r+1])`` where the first
    ``n % p`` ranks receive one extra vertex.
    """

    def __init__(self, n_global: int, nparts: int):
        super().__init__(n_global, nparts)
        base, extra = divmod(self.n_global, self.nparts)
        counts = np.full(self.nparts, base, dtype=np.int64)
        counts[:extra] += 1
        self.boundaries = np.zeros(self.nparts + 1, dtype=np.int64)
        np.cumsum(counts, out=self.boundaries[1:])

    def owner_of(self, gids: np.ndarray) -> np.ndarray:
        gids = np.asarray(gids, dtype=np.int64)
        if len(np.atleast_1d(gids)) and (
            np.min(gids) < 0 or np.max(gids) >= self.n_global
        ):
            raise ValueError("global ids out of range")
        return (np.searchsorted(self.boundaries, gids, side="right") - 1).astype(
            np.int64
        )

    def owned_gids(self, rank: int) -> np.ndarray:
        self._check_rank(rank)
        return np.arange(self.boundaries[rank], self.boundaries[rank + 1],
                         dtype=np.int64)

    def n_owned(self, rank: int) -> int:
        self._check_rank(rank)
        return int(self.boundaries[rank + 1] - self.boundaries[rank])

    def to_local(self, rank: int, gids: np.ndarray) -> np.ndarray:
        self._check_rank(rank)
        gids = np.asarray(gids, dtype=np.int64)
        lo, hi = self.boundaries[rank], self.boundaries[rank + 1]
        if len(np.atleast_1d(gids)) and (np.min(gids) < lo or np.max(gids) >= hi):
            raise ValueError(f"ids not owned by rank {rank}")
        return (gids - lo).astype(np.int64)

    def to_global(self, rank: int, lids: np.ndarray) -> np.ndarray:
        self._check_rank(rank)
        lids = np.asarray(lids, dtype=np.int64)
        n_loc = self.n_owned(rank)
        if len(np.atleast_1d(lids)) and (np.min(lids) < 0 or np.max(lids) >= n_loc):
            raise ValueError(f"local ids out of range for rank {rank}")
        return lids + self.boundaries[rank]
