"""One-dimensional partitioning strategies (paper §III-B).

Three simple strategies from the paper plus an explicit fallback:

* :class:`VertexBlockPartition` — ``n/p`` contiguous vertices per rank
  (natural order; best locality, worst edge balance) — "WC-np";
* :class:`EdgeBlockPartition` — contiguous ranges balanced to ``m/p`` edges
  — "WC-mp";
* :class:`RandomHashPartition` — stateless uniform-random assignment —
  "WC-rand";
* :class:`ExplicitPartition` — arbitrary owner table (output of a real
  partitioner or reordering);
* :class:`GridEdgePartition` — 2-D ``r × c`` checkerboard edge blocks
  (Buluç & Madduri); also a valid 1-D contiguous partition, with the grid
  row/column structure layered on top (see :mod:`repro.analytics.frontier2d`).

:func:`evaluate_partition` computes the balance/edge-cut metrics the paper
uses to explain the performance differences among these strategies.
"""

from .base import Partition
from .block import VertexBlockPartition
from .edge_block import EdgeBlockPartition
from .explicit import ExplicitPartition
from .grid import GridEdgePartition, GridShapeError, grid_shape
from .pulp import pulp_partition
from .random import RandomHashPartition
from .stats import PartitionStats, evaluate_partition

__all__ = [
    "Partition",
    "VertexBlockPartition",
    "EdgeBlockPartition",
    "RandomHashPartition",
    "ExplicitPartition",
    "GridEdgePartition",
    "GridShapeError",
    "grid_shape",
    "PartitionStats",
    "evaluate_partition",
    "pulp_partition",
]
