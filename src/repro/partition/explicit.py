"""Explicit (array-backed) partitioning.

Covers the paper's "more complex partitioning or reordering scenarios":
when ownership is the output of a real partitioner (METIS-like, PuLP-like)
or a custom reordering, it cannot be computed arithmetically and every rank
must hold the owner table.  This is the general fallback every other
strategy can be converted to.
"""

from __future__ import annotations

import numpy as np

from .base import Partition

__all__ = ["ExplicitPartition"]


class ExplicitPartition(Partition):
    """Ownership given by an ``n_global``-length owner array.

    Parameters
    ----------
    owners:
        ``owners[g]`` is the rank owning global vertex ``g``.
    nparts:
        Number of ranks; defaults to ``owners.max() + 1``.
    """

    def __init__(self, owners: np.ndarray, nparts: int | None = None):
        owners = np.asarray(owners, dtype=np.int64)
        if owners.ndim != 1:
            raise ValueError("owners must be 1-D")
        inferred = int(owners.max()) + 1 if len(owners) else 1
        nparts = inferred if nparts is None else int(nparts)
        if len(owners) and (owners.min() < 0 or owners.max() >= nparts):
            raise ValueError("owner values out of range")
        super().__init__(len(owners), nparts)
        self.owners = owners
        self._owned_cache: dict[int, np.ndarray] = {}

    @classmethod
    def from_partition(cls, part: Partition) -> "ExplicitPartition":
        """Materialize any partition into an explicit owner table."""
        owners = part.owner_of(np.arange(part.n_global, dtype=np.int64))
        return cls(owners, part.nparts)

    def owner_of(self, gids: np.ndarray) -> np.ndarray:
        gids = np.asarray(gids, dtype=np.int64)
        if len(np.atleast_1d(gids)) and (
            np.min(gids) < 0 or np.max(gids) >= self.n_global
        ):
            raise ValueError("global ids out of range")
        return self.owners[gids]

    def owned_gids(self, rank: int) -> np.ndarray:
        self._check_rank(rank)
        cached = self._owned_cache.get(rank)
        if cached is None:
            cached = np.flatnonzero(self.owners == rank).astype(np.int64)
            self._owned_cache[rank] = cached
        return cached
