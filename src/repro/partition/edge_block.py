"""Edge-block partitioning (paper §III-B, "WC-mp").

Each rank receives a contiguous vertex range chosen so that every range
carries approximately ``m/p`` (out-)edges.  This equalizes edge work at the
cost of potentially severe *vertex* imbalance.  Computing the ranges needs
the global degree distribution; during distributed ingestion each rank
counts degrees for its chunk and the histogram is combined with an
``allreduce`` (see :func:`from_edge_chunks`).
"""

from __future__ import annotations

import numpy as np

from ..runtime import SUM, Communicator
from .base import Partition

__all__ = ["EdgeBlockPartition"]


class EdgeBlockPartition(Partition):
    """Contiguous vertex ranges balanced by cumulative degree.

    Parameters
    ----------
    degrees:
        Global per-vertex (out-)degree array of length ``n_global``.
    """

    def __init__(self, degrees: np.ndarray, nparts: int):
        degrees = np.asarray(degrees, dtype=np.int64)
        super().__init__(len(degrees), nparts)
        if len(degrees) and degrees.min() < 0:
            raise ValueError("degrees must be non-negative")
        cum = np.cumsum(degrees)
        m = int(cum[-1]) if len(cum) else 0
        # Target the split points at j*m/p edges; each vertex goes to the
        # first range whose target its cumulative degree has not passed.
        targets = (np.arange(1, nparts, dtype=np.float64) * m) / nparts
        cuts = np.searchsorted(cum, targets, side="left") + 1
        self.boundaries = np.concatenate(
            ([0], np.minimum(cuts, self.n_global), [self.n_global])
        ).astype(np.int64)
        # Enforce monotonicity (degenerate distributions can collapse cuts).
        np.maximum.accumulate(self.boundaries, out=self.boundaries)

    @classmethod
    def from_edge_chunks(
        cls, comm: Communicator, src_gids: np.ndarray, n_global: int
    ) -> "EdgeBlockPartition":
        """Build collectively from each rank's ingested edge chunk.

        ``src_gids`` is the source-endpoint column of the rank's chunk; the
        global out-degree histogram is an ``allreduce(SUM)`` of per-chunk
        ``bincount`` s.
        """
        local = np.bincount(
            np.asarray(src_gids, dtype=np.int64), minlength=n_global
        ).astype(np.int64)
        degrees = comm.allreduce(local, SUM)
        return cls(degrees, comm.size)

    def owner_of(self, gids: np.ndarray) -> np.ndarray:
        gids = np.asarray(gids, dtype=np.int64)
        if len(np.atleast_1d(gids)) and (
            np.min(gids) < 0 or np.max(gids) >= self.n_global
        ):
            raise ValueError("global ids out of range")
        return (np.searchsorted(self.boundaries, gids, side="right") - 1).astype(
            np.int64
        )

    def owned_gids(self, rank: int) -> np.ndarray:
        self._check_rank(rank)
        return np.arange(self.boundaries[rank], self.boundaries[rank + 1],
                         dtype=np.int64)

    def n_owned(self, rank: int) -> int:
        self._check_rank(rank)
        return int(self.boundaries[rank + 1] - self.boundaries[rank])

    def to_local(self, rank: int, gids: np.ndarray) -> np.ndarray:
        self._check_rank(rank)
        gids = np.asarray(gids, dtype=np.int64)
        lo, hi = self.boundaries[rank], self.boundaries[rank + 1]
        if len(np.atleast_1d(gids)) and (np.min(gids) < lo or np.max(gids) >= hi):
            raise ValueError(f"ids not owned by rank {rank}")
        return (gids - lo).astype(np.int64)

    def to_global(self, rank: int, lids: np.ndarray) -> np.ndarray:
        self._check_rank(rank)
        lids = np.asarray(lids, dtype=np.int64)
        n_loc = self.n_owned(rank)
        if len(np.atleast_1d(lids)) and (np.min(lids) < 0 or np.max(lids) >= n_loc):
            raise ValueError(f"local ids out of range for rank {rank}")
        return lids + self.boundaries[rank]
