"""2-D (checkerboard) edge-block partitioning (Buluç & Madduri style).

The paper chooses a 1-D representation (§III-A) and leaves the 2-D
alternative to the cost model in :mod:`repro.perf.twod`.  This module makes
it runnable: ranks form an ``r × c`` process grid, the global vertex range
is cut into ``r*c`` contiguous chunks (optionally degree-balanced, like
:class:`~repro.partition.edge_block.EdgeBlockPartition`), and rank
``k = i*c + j`` owns chunk ``k``.  Edge ``u → v`` is stored on the block in
*grid row* ``row_of(owner(v))`` and *grid column* ``col_of(owner(u))``, so

* a frontier over the **column slice** (the union of chunks owned by the
  ranks in grid column ``j``) covers every edge source the block can scan,
  and is assembled with a ``c``-free allgather among the ``r`` ranks of the
  column (``comm.cols``);
* discovered targets live in the **row slice** (the contiguous range owned
  by grid row ``i``) and are combined with a reduction among the ``c``
  ranks of the row (``comm.rows``).

Per frontier phase each rank therefore talks to ``r - 1 + c - 1 ≈ 2√p``
peers instead of up to ``p - 1`` — the communication-avoiding property the
2-D literature (Buluç & Madduri; Yoo et al.) quantifies.

As a plain :class:`~repro.partition.base.Partition` the grid partition is
also a valid 1-D contiguous partition (chunk ``k`` → rank ``k``), so every
1-D kernel runs on it unchanged; the grid structure only adds the
row/column view on top.
"""

from __future__ import annotations

import numpy as np

from ..runtime import SUM, Communicator
from .base import Partition

__all__ = ["GridShapeError", "grid_shape", "GridEdgePartition"]


class GridShapeError(ValueError):
    """``p`` has no non-degenerate ``r × c = p`` factorization."""


def grid_shape(p: int, fallback: bool = False) -> tuple[int, int]:
    """Most-square factorization ``rows × cols`` with ``rows*cols <= p``.

    For composite ``p`` (and for ``p <= 3``) this is the classic exact
    most-square factorization ``rows * cols == p`` (``16 → 4×4``,
    ``8 → 2×4``).  A prime ``p >= 5`` only factors as ``1 × p``, which
    degenerates to 1-D; by default that raises :class:`GridShapeError`.
    With ``fallback=True`` the largest non-degenerate grid with
    ``rows*cols <= p`` is returned instead (``7 → 2×3``) and the trailing
    ``p - rows*cols`` ranks sit the grid out as *idle* ranks: they own no
    vertices and no edge block, but still participate in world-level
    collectives.
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    r = int(np.sqrt(p))
    while p % r:
        r -= 1
    if r == 1 and p >= 5:
        if not fallback:
            raise GridShapeError(
                f"p={p} is prime: the only grid is 1x{p}, which is just a "
                f"1-D layout; pass fallback=True to run a smaller grid "
                f"with idle ranks, or choose a composite rank count")
        # Largest q < p with a non-degenerate factorization (q = p - 1 is
        # even, so this terminates immediately for any prime p >= 5).
        for q in range(p - 1, 3, -1):
            rq = int(np.sqrt(q))
            while q % rq:
                rq -= 1
            if rq > 1:
                return rq, q // rq
        return 2, 2
    return r, p // r


class GridEdgePartition(Partition):
    """Contiguous vertex chunks laid out on an ``r × c`` process grid.

    Parameters
    ----------
    degrees:
        Global per-vertex (out-)degree array; chunk boundaries equalize
        cumulative degree across the ``rows*cols`` active ranks (pass
        ``np.ones(n)`` for plain vertex-balanced chunks).
    nparts:
        World size ``p``.  When ``grid_shape(p, fallback)`` yields
        ``rows*cols < p``, ranks ``rows*cols .. p-1`` are idle.
    """

    def __init__(self, degrees: np.ndarray, nparts: int,
                 fallback: bool = False):
        degrees = np.asarray(degrees, dtype=np.int64)
        super().__init__(len(degrees), nparts)
        if len(degrees) and degrees.min() < 0:
            raise ValueError("degrees must be non-negative")
        self.grid_rows, self.grid_cols = grid_shape(nparts, fallback=fallback)
        self.n_active = self.grid_rows * self.grid_cols

        cum = np.cumsum(degrees)
        m = int(cum[-1]) if len(cum) else 0
        targets = (np.arange(1, self.n_active, dtype=np.float64) * m) \
            / self.n_active
        cuts = np.searchsorted(cum, targets, side="left") + 1
        bounds = np.concatenate(
            ([0], np.minimum(cuts, self.n_global), [self.n_global])
        ).astype(np.int64)
        np.maximum.accumulate(bounds, out=bounds)
        # Idle ranks (nparts > n_active) own the empty tail range.
        self.boundaries = np.concatenate(
            [bounds, np.full(nparts - self.n_active, self.n_global,
                             dtype=np.int64)])

    # ------------------------------------------------------------------
    # collective construction (mirrors EdgeBlockPartition)
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_chunks(
        cls, comm: Communicator, src_gids: np.ndarray, n_global: int,
        fallback: bool = False,
    ) -> "GridEdgePartition":
        """Build collectively from each rank's ingested edge chunk."""
        local = np.bincount(
            np.asarray(src_gids, dtype=np.int64), minlength=n_global
        ).astype(np.int64)
        degrees = comm.allreduce(local, SUM)
        return cls(degrees, comm.size, fallback=fallback)

    # ------------------------------------------------------------------
    # 1-D Partition contract (chunk k -> rank k, contiguous)
    # ------------------------------------------------------------------
    def owner_of(self, gids: np.ndarray) -> np.ndarray:
        gids = np.asarray(gids, dtype=np.int64)
        if len(np.atleast_1d(gids)) and (
            np.min(gids) < 0 or np.max(gids) >= self.n_global
        ):
            raise ValueError("global ids out of range")
        return (np.searchsorted(self.boundaries[:self.n_active + 1], gids,
                                side="right") - 1).astype(np.int64)

    def owned_gids(self, rank: int) -> np.ndarray:
        self._check_rank(rank)
        return np.arange(self.boundaries[rank], self.boundaries[rank + 1],
                         dtype=np.int64)

    def n_owned(self, rank: int) -> int:
        self._check_rank(rank)
        return int(self.boundaries[rank + 1] - self.boundaries[rank])

    def to_local(self, rank: int, gids: np.ndarray) -> np.ndarray:
        self._check_rank(rank)
        gids = np.asarray(gids, dtype=np.int64)
        lo, hi = self.boundaries[rank], self.boundaries[rank + 1]
        if len(np.atleast_1d(gids)) and (np.min(gids) < lo or np.max(gids) >= hi):
            raise ValueError(f"ids not owned by rank {rank}")
        return (gids - lo).astype(np.int64)

    def to_global(self, rank: int, lids: np.ndarray) -> np.ndarray:
        self._check_rank(rank)
        lids = np.asarray(lids, dtype=np.int64)
        n_loc = self.n_owned(rank)
        if len(np.atleast_1d(lids)) and (np.min(lids) < 0 or np.max(lids) >= n_loc):
            raise ValueError(f"local ids out of range for rank {rank}")
        return lids + self.boundaries[rank]

    # ------------------------------------------------------------------
    # grid structure
    # ------------------------------------------------------------------
    def is_active(self, rank: int) -> bool:
        """False for idle ranks of a fallback grid (they own nothing)."""
        self._check_rank(rank)
        return rank < self.n_active

    def grid_coords(self, rank: int) -> tuple[int, int]:
        """Grid ``(row, col)`` of an active rank; ``(-1, -1)`` when idle."""
        self._check_rank(rank)
        if rank >= self.n_active:
            return (-1, -1)
        return rank // self.grid_cols, rank % self.grid_cols

    def row_range(self, i: int) -> tuple[int, int]:
        """Global id range ``[lo, hi)`` of grid row ``i``'s (contiguous)
        row slice — the union of the chunks owned by ranks ``i*c .. i*c+c-1``."""
        if not (0 <= i < self.grid_rows):
            raise ValueError(f"grid row {i} out of range")
        c = self.grid_cols
        return int(self.boundaries[i * c]), int(self.boundaries[(i + 1) * c])

    def col_chunk_counts(self, j: int) -> np.ndarray:
        """Chunk sizes (one per grid row) of grid column ``j``'s column
        slice — the *strided* union of the chunks owned by ranks
        ``{i*c + j}``, ordered by grid row."""
        if not (0 <= j < self.grid_cols):
            raise ValueError(f"grid col {j} out of range")
        owners = np.arange(self.grid_rows, dtype=np.int64) * self.grid_cols + j
        return (self.boundaries[owners + 1] - self.boundaries[owners]) \
            .astype(np.int64)

    def col_slice_gids(self, j: int) -> np.ndarray:
        """Global ids of grid column ``j``'s column slice, in slice order."""
        owners = np.arange(self.grid_rows, dtype=np.int64) * self.grid_cols + j
        parts = [np.arange(self.boundaries[k], self.boundaries[k + 1],
                           dtype=np.int64) for k in owners]
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

    def col_index_of(self, j: int, gids: np.ndarray) -> np.ndarray:
        """Column-slice-local index of each gid in column ``j``'s slice.

        Every gid must be owned by a rank of grid column ``j``.
        """
        gids = np.asarray(gids, dtype=np.int64)
        owners = self.owner_of(gids)
        if len(gids) and not np.all(owners % self.grid_cols == j):
            raise ValueError(f"ids outside grid column {j}")
        offsets = np.concatenate(
            ([0], np.cumsum(self.col_chunk_counts(j))))
        i = owners // self.grid_cols
        return (offsets[i] + gids - self.boundaries[owners]).astype(np.int64)
