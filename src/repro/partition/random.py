"""Random (hash-based) partitioning (paper §III-B, "WC-rand").

Each vertex is assigned to a uniformly pseudo-random rank.  Using a
deterministic integer hash keyed by a seed means *any* rank can compute any
vertex's owner on the fly — no owner table is needed, exactly like block
partitioning — while still destroying locality the way true random
assignment does.

Random partitioning gives the best vertex/edge balance on skewed graphs but
the worst intra-task locality and the highest ghost counts (the trade-off
Figures 2-3 of the paper explore).
"""

from __future__ import annotations

import numpy as np

from .base import Partition

__all__ = ["RandomHashPartition"]

# SplitMix64 constants.
_C1 = np.uint64(0xBF58476D1CE4E5B9)
_C2 = np.uint64(0x94D049BB133111EB)
_GAMMA = np.uint64(0x9E3779B97F4A7C15)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer: high-quality 64-bit mix, vectorized."""
    z = x + _GAMMA
    z = (z ^ (z >> np.uint64(30))) * _C1
    z = (z ^ (z >> np.uint64(27))) * _C2
    return z ^ (z >> np.uint64(31))


class RandomHashPartition(Partition):
    """Stateless uniform-random vertex assignment via SplitMix64.

    Parameters
    ----------
    seed:
        Hash key; different seeds give independent random partitions.
    """

    def __init__(self, n_global: int, nparts: int, seed: int = 0):
        super().__init__(n_global, nparts)
        self.seed = int(seed)
        self._seed_u64 = np.uint64(self.seed & 0xFFFFFFFFFFFFFFFF)
        self._owned_cache: dict[int, np.ndarray] = {}

    def owner_of(self, gids: np.ndarray) -> np.ndarray:
        gids = np.asarray(gids, dtype=np.int64)
        if len(np.atleast_1d(gids)) and (
            np.min(gids) < 0 or np.max(gids) >= self.n_global
        ):
            raise ValueError("global ids out of range")
        with np.errstate(over="ignore"):
            h = _splitmix64(gids.astype(np.uint64) ^ self._seed_u64)
        return (h % np.uint64(self.nparts)).astype(np.int64)

    def owned_gids(self, rank: int) -> np.ndarray:
        self._check_rank(rank)
        cached = self._owned_cache.get(rank)
        if cached is None:
            all_ids = np.arange(self.n_global, dtype=np.int64)
            cached = all_ids[self.owner_of(all_ids) == rank]
            self._owned_cache[rank] = cached
        return cached
