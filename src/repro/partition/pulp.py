"""Label-propagation partitioning à la PuLP (paper §VII future work).

The paper's second follow-on direction is "better partitioning strategies
to improve load balance and overall scalability", citing the authors' own
PuLP partitioner (Slota, Madduri & Rajamanickam, BigData 2014): since
(Par)METIS-class tools cannot process web-scale graphs, PuLP repurposes the
cheap Label Propagation kernel as a partitioner — labels are partition ids,
vertices migrate toward the partition holding most of their neighbors, and
migrations are throttled by vertex- and edge-balance constraints.

This implementation runs the same scheme single-process over the global
edge list (partitioning is a preprocessing step in the paper's pipeline
too) and returns an :class:`~repro.partition.explicit.ExplicitPartition`.
It typically cuts the random partitioning's edge cut by 2-5x on the
web-crawl stand-in while keeping both balance constraints (see
``bench_extensions.py``).
"""

from __future__ import annotations

import numpy as np

from .block import VertexBlockPartition
from .explicit import ExplicitPartition

__all__ = ["pulp_partition"]


def _counts(owners: np.ndarray, weights: np.ndarray | None, nparts: int
            ) -> np.ndarray:
    if weights is None:
        return np.bincount(owners, minlength=nparts).astype(np.int64)
    return np.bincount(owners, weights=weights, minlength=nparts).astype(
        np.int64)


def pulp_partition(
    edges: np.ndarray,
    n: int,
    nparts: int,
    n_iters: int = 8,
    vertex_balance: float = 1.10,
    edge_balance: float = 1.50,
    seed: int = 0,
) -> ExplicitPartition:
    """Partition ``n`` vertices into ``nparts`` balanced, low-cut parts.

    Parameters
    ----------
    edges:
        Global ``(m, 2)`` directed edge list (treated undirected for
        affinity, as Label Propagation does).
    n_iters:
        Refinement sweeps.  Each sweep moves every vertex at most once.
    vertex_balance, edge_balance:
        Maximum allowed ``max/avg`` ratios for per-part vertex counts and
        per-part edge endpoints.  Moves violating either cap are rejected.
    seed:
        Tie-break/ordering seed (deterministic output).

    Returns
    -------
    ExplicitPartition
        Never worse than vertex-block on balance caps; usually far better
        than random on edge cut.
    """
    if nparts < 1:
        raise ValueError("nparts must be >= 1")
    if n_iters < 0:
        raise ValueError("n_iters must be non-negative")
    if vertex_balance < 1.0 or edge_balance < 1.0:
        raise ValueError("balance caps must be >= 1.0")
    edges = np.asarray(edges, dtype=np.int64)
    if nparts == 1 or n == 0 or len(edges) == 0:
        owners = VertexBlockPartition(n, nparts).owner_of(
            np.arange(n, dtype=np.int64)) if n else np.empty(0, np.int64)
        return ExplicitPartition(owners, nparts)

    # Undirected adjacency in CSR form (for per-vertex affinity counts).
    und_src = np.concatenate([edges[:, 0], edges[:, 1]])
    und_dst = np.concatenate([edges[:, 1], edges[:, 0]])
    order = np.argsort(und_src, kind="stable")
    adj = und_dst[order]
    deg = np.bincount(und_src, minlength=n).astype(np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(deg, out=indptr[1:])
    rows = np.repeat(np.arange(n, dtype=np.int64), deg)

    owners = VertexBlockPartition(n, nparts).owner_of(
        np.arange(n, dtype=np.int64))
    v_cap = int(np.ceil(vertex_balance * n / nparts))
    e_cap = int(np.ceil(edge_balance * max(1, deg.sum()) / nparts))

    rng = np.random.default_rng(seed)
    v_cnt = _counts(owners, None, nparts)
    e_cnt = _counts(owners, deg.astype(np.float64), nparts)

    for _sweep in range(n_iters):
        # Per-vertex affinity: the part holding the most neighbors.
        nbr_parts = owners[adj]
        # Count (vertex, part) pairs via sorted runs.
        key_order = np.lexsort((nbr_parts, rows))
        r_sorted = rows[key_order]
        p_sorted = nbr_parts[key_order]
        new_run = np.empty(len(key_order), dtype=bool)
        if len(key_order):
            new_run[0] = True
            new_run[1:] = (r_sorted[1:] != r_sorted[:-1]) | \
                (p_sorted[1:] != p_sorted[:-1])
        starts = np.flatnonzero(new_run)
        run_rows = r_sorted[starts]
        run_parts = p_sorted[starts]
        run_counts = np.diff(np.append(starts, len(key_order)))
        sel = np.lexsort((run_parts, run_counts, run_rows))
        rr = run_rows[sel]
        last = np.empty(len(sel), dtype=bool)
        if len(sel):
            last[-1] = True
            last[:-1] = rr[1:] != rr[:-1]
        best_part = np.full(n, -1, dtype=np.int64)
        best_part[run_rows[sel[last]]] = run_parts[sel[last]]

        movers = np.flatnonzero((best_part >= 0) & (best_part != owners))
        if len(movers) == 0:
            break
        # Gain-first ordering with a random jitter so ties rotate.
        gain = np.zeros(len(movers), dtype=np.float64)
        # Approximate gain: affinity count toward target part.
        gain += rng.random(len(movers))
        movers = movers[np.argsort(-gain)]

        moved = 0
        # Apply moves greedily under both balance caps.
        for v in movers:
            t = best_part[v]
            s = owners[v]
            if v_cnt[t] + 1 > v_cap or e_cnt[t] + deg[v] > e_cap:
                continue
            owners[v] = t
            v_cnt[t] += 1
            v_cnt[s] -= 1
            e_cnt[t] += deg[v]
            e_cnt[s] -= deg[v]
            moved += 1

        # Balancing phase (PuLP's explicit constraint sweeps): drain
        # overweight parts by migrating their heaviest vertices to the
        # lightest feasible part, regardless of affinity.
        for s in np.flatnonzero(e_cnt > e_cap):
            members = np.flatnonzero(owners == s)
            for v in members[np.argsort(-deg[members])]:
                if e_cnt[s] <= e_cap:
                    break
                t = int(np.argmin(e_cnt + np.where(
                    v_cnt + 1 > v_cap, np.int64(2**60), 0)))
                if t == s or e_cnt[t] + deg[v] > e_cap:
                    break
                owners[v] = t
                v_cnt[t] += 1
                v_cnt[s] -= 1
                e_cnt[t] += deg[v]
                e_cnt[s] -= deg[v]
                moved += 1
        for s in np.flatnonzero(v_cnt > v_cap):
            members = np.flatnonzero(owners == s)
            for v in members[np.argsort(deg[members])]:
                if v_cnt[s] <= v_cap:
                    break
                t = int(np.argmin(v_cnt))
                if t == s:
                    break
                owners[v] = t
                v_cnt[t] += 1
                v_cnt[s] -= 1
                e_cnt[t] += deg[v]
                e_cnt[s] -= deg[v]
                moved += 1

        if moved == 0:
            break

    return ExplicitPartition(owners, nparts)
