"""Partition quality metrics (paper §III-B).

The paper evaluates partitionings by vertex/edge balance and by the ratio of
internal to external edges (the aggregate external-edge count being the
*edge cut*).  These metrics predict the idle and communication components of
Fig. 3, so the stats module is also what the performance model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import sorted_unique
from .base import Partition

__all__ = ["PartitionStats", "evaluate_partition"]


@dataclass(frozen=True)
class PartitionStats:
    """Quality summary of a partition against a concrete edge list."""

    nparts: int
    vertex_counts: np.ndarray  # owned vertices per rank
    edge_counts: np.ndarray  # out-edges whose source the rank owns
    cut_edges: int  # edges whose endpoints live on different ranks
    m_total: int
    ghost_counts: np.ndarray  # distinct external neighbor vertices per rank

    @property
    def vertex_imbalance(self) -> float:
        """max/mean owned-vertex ratio (1.0 = perfectly balanced)."""
        mean = self.vertex_counts.mean()
        return float(self.vertex_counts.max() / mean) if mean else 1.0

    @property
    def edge_imbalance(self) -> float:
        """max/mean owned-edge ratio (1.0 = perfectly balanced)."""
        mean = self.edge_counts.mean()
        return float(self.edge_counts.max() / mean) if mean else 1.0

    @property
    def cut_fraction(self) -> float:
        """Fraction of edges crossing rank boundaries (the edge cut)."""
        return self.cut_edges / self.m_total if self.m_total else 0.0

    def as_dict(self) -> dict:
        return {
            "nparts": self.nparts,
            "vertex_imbalance": self.vertex_imbalance,
            "edge_imbalance": self.edge_imbalance,
            "cut_fraction": self.cut_fraction,
            "max_ghosts": int(self.ghost_counts.max()) if len(self.ghost_counts) else 0,
        }


def evaluate_partition(part: Partition, edges: np.ndarray) -> PartitionStats:
    """Score ``part`` against a global edge list of shape ``(m, 2)``.

    Ghost counts are the number of *distinct* off-rank neighbor vertices per
    rank, counting both edge directions (a ghost is adjacent via in- or
    out-edges, per the paper's Table II).
    """
    edges = np.asarray(edges, dtype=np.int64)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError("edges must have shape (m, 2)")
    src_own = part.owner_of(edges[:, 0])
    dst_own = part.owner_of(edges[:, 1])
    cut = int(np.count_nonzero(src_own != dst_own))
    vertex_counts = part.owned_counts()
    edge_counts = np.bincount(src_own, minlength=part.nparts).astype(np.int64)

    ghost_counts = np.zeros(part.nparts, dtype=np.int64)
    crossing = src_own != dst_own
    if crossing.any():
        # From the source-owner side, dst is a ghost; from the dst-owner
        # side, src is a ghost.  Count distinct (rank, ghost gid) pairs.
        n = part.n_global
        keys = np.concatenate(
            [
                src_own[crossing] * np.int64(n) + edges[crossing, 1],
                dst_own[crossing] * np.int64(n) + edges[crossing, 0],
            ]
        )
        uniq = sorted_unique(keys)
        ghost_counts = np.bincount(uniq // n, minlength=part.nparts).astype(np.int64)

    return PartitionStats(
        nparts=part.nparts,
        vertex_counts=vertex_counts,
        edge_counts=edge_counts,
        cut_edges=cut,
        m_total=len(edges),
        ghost_counts=ghost_counts,
    )
