"""Partition interface: who owns each global vertex (paper §III-B).

A partition is a *pure function* from global vertex id to owning rank, plus
the induced global↔local id conversions for owned vertices.  All methods are
vectorized.  Partitions are cheap value objects shared by every rank (for
block and hash partitions ownership is computable on the fly, as the paper
notes; the explicit partition carries the owner array the paper requires for
"more complex partitioning or reordering scenarios").
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Partition"]


class Partition(ABC):
    """Assignment of global vertex ids ``0..n_global-1`` to ``nparts`` ranks."""

    def __init__(self, n_global: int, nparts: int):
        if n_global < 0:
            raise ValueError("n_global must be non-negative")
        if nparts < 1:
            raise ValueError("nparts must be >= 1")
        self.n_global = int(n_global)
        self.nparts = int(nparts)

    # ------------------------------------------------------------------
    @abstractmethod
    def owner_of(self, gids: np.ndarray) -> np.ndarray:
        """Owning rank of each global id (vectorized)."""

    @abstractmethod
    def owned_gids(self, rank: int) -> np.ndarray:
        """Sorted array of global ids owned by ``rank``."""

    def n_owned(self, rank: int) -> int:
        """Number of vertices owned by ``rank``."""
        return len(self.owned_gids(rank))

    # ------------------------------------------------------------------
    def to_local(self, rank: int, gids: np.ndarray) -> np.ndarray:
        """Local index (0..n_loc-1) of global ids owned by ``rank``.

        Local ids follow ascending global-id order within the rank.  The
        base implementation searches the sorted owned list; subclasses with
        arithmetic structure override it.
        """
        gids = np.asarray(gids, dtype=np.int64)
        owned = self.owned_gids(rank)
        lids = np.searchsorted(owned, gids)
        if len(gids):
            bad = (lids >= len(owned)) | (owned[np.minimum(lids, len(owned) - 1)] != gids)
            if bad.any():
                raise ValueError(
                    f"{int(bad.sum())} ids not owned by rank {rank} "
                    f"(first: {int(gids[np.flatnonzero(bad)[0]])})")
        return lids.astype(np.int64)

    def to_global(self, rank: int, lids: np.ndarray) -> np.ndarray:
        """Global id of each local index on ``rank``."""
        lids = np.asarray(lids, dtype=np.int64)
        owned = self.owned_gids(rank)
        if len(lids) and (lids.min() < 0 or lids.max() >= len(owned)):
            raise ValueError(f"local ids out of range for rank {rank}")
        return owned[lids]

    # ------------------------------------------------------------------
    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.nparts):
            raise ValueError(f"rank {rank} out of range for {self.nparts} parts")

    def owned_counts(self) -> np.ndarray:
        """Vertex count per rank."""
        return np.array([self.n_owned(r) for r in range(self.nparts)], dtype=np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}(n_global={self.n_global}, "
                f"nparts={self.nparts})")
