"""Per-rank distributed graph representation (paper §III-C, Table II).

Each rank owns a subset of vertices and stores *all* incoming and outgoing
edges of those vertices in CSR form.  Vertices are relabeled: owned
("local") vertices take ids ``0..n_loc-1`` (ascending global order) and
ghost vertices — off-rank vertices adjacent to a local vertex — take ids
``n_loc..n_loc+n_gst-1``.  Adjacency arrays hold these compact local ids,
so any per-vertex datum lives in an ``(n_loc + n_gst)``-length array.

The structure stores exactly the paper's Table II fields::

    n_global, m_global           global counts
    n_loc, n_gst                 local and ghost vertex counts
    out_edges / out_indexes      CSR of out-edges of local vertices
    in_edges  / in_indexes       CSR of in-edges of local vertices
    map                          global id -> local id (linear-probing hash)
    unmap                        local id -> global id array
    ghost_tasks                  owning rank of each ghost ("tasks")
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..partition.base import Partition
from ..partition.grid import GridEdgePartition
from .csr import csr_row_lengths
from .hashmap import IntHashMap

__all__ = ["DistGraph", "GridGraph"]


@dataclass
class DistGraph:
    """One rank's share of a distributed directed graph."""

    rank: int
    nparts: int
    n_global: int
    m_global: int
    partition: Partition
    out_indexes: np.ndarray  # (n_loc + 1,)
    out_edges: np.ndarray  # (m_out,) local ids
    in_indexes: np.ndarray  # (n_loc + 1,)
    in_edges: np.ndarray  # (m_in,) local ids
    unmap: np.ndarray  # (n_loc + n_gst,) global ids
    ghost_tasks: np.ndarray  # (n_gst,) owner rank per ghost
    map: IntHashMap = field(repr=False)
    out_values: np.ndarray | None = None  # optional per-out-edge weights
    in_values: np.ndarray | None = None  # optional per-in-edge weights

    # ------------------------------------------------------------------
    @property
    def n_loc(self) -> int:
        """Number of locally-owned vertices."""
        return len(self.out_indexes) - 1

    @property
    def n_gst(self) -> int:
        """Number of ghost vertices."""
        return len(self.ghost_tasks)

    @property
    def n_total(self) -> int:
        """Local + ghost vertex count (length of per-vertex arrays)."""
        return self.n_loc + self.n_gst

    @property
    def m_out(self) -> int:
        return len(self.out_edges)

    @property
    def m_in(self) -> int:
        return len(self.in_edges)

    # ------------------------------------------------------------------
    def to_local(self, gids: np.ndarray) -> np.ndarray:
        """Global → local ids via the hash map (−1 if unknown here)."""
        return self.map.get(gids, default=-1)

    def to_global(self, lids: np.ndarray) -> np.ndarray:
        """Local → global ids via the unmap array."""
        return self.unmap[lids]

    def is_ghost(self, lids: np.ndarray) -> np.ndarray:
        """Boolean: is each local id a ghost (not owned here)?"""
        return np.asarray(lids) >= self.n_loc

    def owner_of_local(self, lids: np.ndarray) -> np.ndarray:
        """Owning rank of each local id (self for owned, tasks[] for ghosts)."""
        lids = np.asarray(lids, dtype=np.int64)
        out = np.full(len(lids), self.rank, dtype=np.int64)
        ghosts = lids >= self.n_loc
        out[ghosts] = self.ghost_tasks[lids[ghosts] - self.n_loc]
        return out

    # ------------------------------------------------------------------
    def out_neighbors(self, v: int) -> np.ndarray:
        """Local ids of out-neighbors of local vertex ``v``."""
        return self.out_edges[self.out_indexes[v] : self.out_indexes[v + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """Local ids of in-neighbors of local vertex ``v``."""
        return self.in_edges[self.in_indexes[v] : self.in_indexes[v + 1]]

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every local vertex."""
        return csr_row_lengths(self.out_indexes)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every local vertex."""
        return csr_row_lengths(self.in_indexes)

    def total_degrees(self) -> np.ndarray:
        """in + out degree of every local vertex."""
        return self.out_degrees() + self.in_degrees()

    # ------------------------------------------------------------------
    def sort_adjacency(self) -> "DistGraph":
        """Sort every adjacency row by neighbor *global* id, in place.

        :func:`~repro.graph.build.build_dist_graph` preserves the input
        edge order within each row, which depends on how the edge list was
        generated and exchanged.  The streaming subsystem needs a
        *canonical* row order so that a :class:`~repro.stream.deltagraph.
        DynamicDistGraph` (base rows merged with sorted delta rows) and a
        from-scratch rebuild of the same logical graph produce bitwise
        identical analytics: segment sums via ``np.add.reduceat`` reduce
        each row sequentially, so the summation order must match.  Sorting
        by global id (local ids mix owned and ghost numbering, which
        differs across representations) with a stable sort gives that
        canonical order.  Edge values, when present, travel with their
        edges.  Returns ``self``.
        """
        for ind, name in ((self.out_indexes, "out"), (self.in_indexes, "in")):
            adj = getattr(self, f"{name}_edges")
            vals = getattr(self, f"{name}_values")
            if not len(adj):
                continue
            lens = csr_row_lengths(ind)
            rows = np.repeat(np.arange(self.n_loc, dtype=np.int64), lens)
            order = np.lexsort((self.unmap[adj], rows))
            setattr(self, f"{name}_edges", adj[order])
            if vals is not None:
                setattr(self, f"{name}_values", vals[order])
        return self

    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Approximate resident bytes of this rank's graph structures."""
        total = (
            self.out_indexes.nbytes
            + self.out_edges.nbytes
            + self.in_indexes.nbytes
            + self.in_edges.nbytes
            + self.unmap.nbytes
            + self.ghost_tasks.nbytes
        )
        total += self.map.capacity * 16  # key + value words
        return total

    @property
    def is_weighted(self) -> bool:
        """True when per-edge values were carried through construction."""
        return self.out_values is not None

    def validate(self) -> None:
        """Internal consistency checks (used by tests and after build)."""
        n_loc, n_tot = self.n_loc, self.n_total
        if (self.out_values is None) != (self.in_values is None):
            raise AssertionError("edge values must exist in both directions")
        if self.out_values is not None:
            if len(self.out_values) != self.m_out:
                raise AssertionError("out_values length != m_out")
            if len(self.in_values) != self.m_in:
                raise AssertionError("in_values length != m_in")
        if len(self.in_indexes) != n_loc + 1:
            raise AssertionError("in/out index length mismatch")
        if len(self.unmap) != n_tot:
            raise AssertionError("unmap length != n_loc + n_gst")
        for name, adj in (("out", self.out_edges), ("in", self.in_edges)):
            if len(adj) and (adj.min() < 0 or adj.max() >= n_tot):
                raise AssertionError(f"{name}_edges contains invalid local ids")
        if not np.all(np.diff(self.out_indexes) >= 0):
            raise AssertionError("out_indexes not monotone")
        if not np.all(np.diff(self.in_indexes) >= 0):
            raise AssertionError("in_indexes not monotone")
        # map and unmap must be mutually inverse.
        back = self.map.get(self.unmap)
        if not np.array_equal(back, np.arange(n_tot)):
            raise AssertionError("map/unmap are not inverse")
        # Ghost owners must be consistent with the partition, never self.
        if self.n_gst:
            owners = self.partition.owner_of(self.unmap[n_loc:])
            if not np.array_equal(owners, self.ghost_tasks):
                raise AssertionError("ghost_tasks disagree with partition")
            if (self.ghost_tasks == self.rank).any():
                raise AssertionError("ghost owned by self")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DistGraph(rank={self.rank}/{self.nparts}, "
            f"n_loc={self.n_loc}, n_gst={self.n_gst}, "
            f"m_out={self.m_out}, m_in={self.m_in}, "
            f"n_global={self.n_global}, m_global={self.m_global})"
        )


@dataclass
class GridGraph:
    """One rank's edge block of a 2-D checkerboard-distributed graph.

    Rank ``(i, j)`` of the process grid stores every edge ``u → v`` with
    ``owner(u)`` in grid column ``j`` and ``owner(v)`` in grid row ``i``,
    in two CSR views of the same block:

    * ``td_*`` ("top-down"): rows are **column-slice** source indices,
      entries are **row-slice** target indices;
    * ``bu_*`` ("bottom-up"): rows are row-slice target indices, entries
      are column-slice source indices.

    The row slice (grid row ``i``'s vertices) is a contiguous global
    range ``[row_lo, row_lo + n_row)``; the column slice (grid column
    ``j``'s vertices) is a strided union of chunks, one per grid row,
    concatenated in grid-row order — exactly the order of an allgatherv
    over ``comm.cols()``, so a gathered per-own-vertex array *is* a
    column-slice array.  ``col_unmap`` maps column-slice index → gid.

    Idle ranks of a fallback grid hold an empty block (all sizes zero,
    ``grid_row == grid_col == -1``) and skip row/column collectives.
    """

    rank: int
    nparts: int
    n_global: int
    m_global: int
    partition: GridEdgePartition
    grid_row: int
    grid_col: int
    row_lo: int  # first gid of the (contiguous) row slice
    td_indexes: np.ndarray  # (n_col + 1,)
    td_edges: np.ndarray  # (m_block,) row-slice indices
    bu_indexes: np.ndarray  # (n_row + 1,)
    bu_edges: np.ndarray  # (m_block,) column-slice indices
    col_counts: np.ndarray  # (grid_rows,) column-slice chunk sizes
    col_unmap: np.ndarray  # (n_col,) column-slice index -> gid
    td_values: np.ndarray | None = None  # optional weights, td order
    bu_values: np.ndarray | None = None  # optional weights, bu order
    symmetrized: bool = False  # True when built with reversed edges added

    # ------------------------------------------------------------------
    @property
    def is_active(self) -> bool:
        return self.grid_row >= 0

    @property
    def n_row(self) -> int:
        """Row-slice size (number of bu CSR rows)."""
        return len(self.bu_indexes) - 1

    @property
    def n_col(self) -> int:
        """Column-slice size (number of td CSR rows)."""
        return len(self.td_indexes) - 1

    @property
    def m_block(self) -> int:
        return len(self.td_edges)

    @property
    def n_own(self) -> int:
        """Vertices owned by this rank (its chunk of the vertex range)."""
        return self.partition.n_owned(self.rank)

    @property
    def own_lo(self) -> int:
        """First owned gid."""
        return int(self.partition.boundaries[self.rank])

    @property
    def own_row_off(self) -> int:
        """Offset of the owned chunk inside the row slice."""
        return self.own_lo - self.row_lo

    @property
    def own_col_off(self) -> int:
        """Offset of the owned chunk inside the column slice."""
        return int(self.col_counts[:self.grid_row].sum()) \
            if self.is_active else 0

    def td_degrees(self) -> np.ndarray:
        """Block-local out-degree of every column-slice vertex."""
        return csr_row_lengths(self.td_indexes)

    def bu_degrees(self) -> np.ndarray:
        """Block-local in-degree of every row-slice vertex."""
        return csr_row_lengths(self.bu_indexes)

    def memory_bytes(self) -> int:
        """Approximate resident bytes of this rank's block structures."""
        return (self.td_indexes.nbytes + self.td_edges.nbytes
                + self.bu_indexes.nbytes + self.bu_edges.nbytes
                + self.col_counts.nbytes + self.col_unmap.nbytes)

    def validate(self) -> None:
        """Internal consistency checks (used by tests and after build)."""
        p = self.partition
        if not self.is_active:
            if self.n_row or self.n_col or self.m_block or self.n_own:
                raise AssertionError("idle rank holds a non-empty block")
            return
        lo, hi = p.row_range(self.grid_row)
        if lo != self.row_lo or hi - lo != self.n_row:
            raise AssertionError("row slice disagrees with partition")
        if not np.array_equal(p.col_chunk_counts(self.grid_col),
                              self.col_counts):
            raise AssertionError("col chunks disagree with partition")
        if len(self.col_unmap) != int(self.col_counts.sum()):
            raise AssertionError("col_unmap length != column-slice size")
        if len(self.td_edges) != len(self.bu_edges):
            raise AssertionError("td/bu edge count mismatch")
        if len(self.td_edges) and (
            self.td_edges.min() < 0 or self.td_edges.max() >= self.n_row
        ):
            raise AssertionError("td_edges contains invalid row indices")
        if len(self.bu_edges) and (
            self.bu_edges.min() < 0 or self.bu_edges.max() >= self.n_col
        ):
            raise AssertionError("bu_edges contains invalid column indices")
        for name in ("td_indexes", "bu_indexes"):
            if not np.all(np.diff(getattr(self, name)) >= 0):
                raise AssertionError(f"{name} not monotone")
        if (self.td_values is None) != (self.bu_values is None):
            raise AssertionError("edge values must exist in both views")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GridGraph(rank={self.rank}/{self.nparts}, "
            f"grid=({self.grid_row},{self.grid_col}), "
            f"n_row={self.n_row}, n_col={self.n_col}, "
            f"m_block={self.m_block}, n_global={self.n_global}, "
            f"m_global={self.m_global})"
        )
