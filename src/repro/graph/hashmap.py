"""Vectorized linear-probing integer hash map (paper §III-C).

The paper's distributed graph avoids per-vertex ``n_global``-length arrays by
relabeling local + ghost vertices and keeping a *fast linear-probing hash
map* from global vertex id to local id (``map[global_id] = local_id``).
This module implements that data structure with NumPy open addressing so
that whole receive buffers can be translated in a handful of vectorized
probe rounds instead of one Python-level lookup per vertex.

Keys must be non-negative integers (vertex ids); values are int64.
"""

from __future__ import annotations

import numpy as np

__all__ = ["IntHashMap"]

_EMPTY = np.int64(-1)
# SplitMix64 multiplier — good avalanche behaviour for multiplicative hashing.
_MULT = np.uint64(0x9E3779B97F4A7C15)


def _hash(keys: np.ndarray, shift: int) -> np.ndarray:
    """Multiplicative (Fibonacci) hash of int keys into table indices."""
    h = keys.astype(np.uint64) * _MULT
    return (h >> np.uint64(shift)).astype(np.int64)


class IntHashMap:
    """Open-addressing int→int map with batch (vectorized) operations.

    Parameters
    ----------
    capacity_hint:
        Expected number of entries; the table is sized to keep the load
        factor below ``max_load`` and grows automatically.
    max_load:
        Resize threshold.

    Notes
    -----
    * ``get``/``insert`` take whole arrays; a probe *round* resolves every
      pending query whose current slot is conclusive, so the Python-level
      loop runs O(max probe length) times, not O(batch size).
    * Duplicate keys within one ``insert`` batch are allowed; the last
      occurrence (in array order) wins, matching ``dict`` update semantics.
    """

    __slots__ = ("_keys", "_vals", "_size", "_log2cap", "_max_load")

    def __init__(self, capacity_hint: int = 16, max_load: float = 0.6):
        if not (0.1 <= max_load <= 0.9):
            raise ValueError("max_load must be in [0.1, 0.9]")
        self._max_load = max_load
        log2cap = 3
        while (1 << log2cap) * max_load < max(1, capacity_hint):
            log2cap += 1
        self._alloc(log2cap)
        self._size = 0

    def _alloc(self, log2cap: int) -> None:
        self._log2cap = log2cap
        cap = 1 << log2cap
        self._keys = np.full(cap, _EMPTY, dtype=np.int64)
        self._vals = np.empty(cap, dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return len(self._keys)

    def __len__(self) -> int:
        return self._size

    @property
    def load_factor(self) -> float:
        return self._size / self.capacity

    def keys(self) -> np.ndarray:
        """All stored keys (unordered)."""
        return self._keys[self._keys != _EMPTY].copy()

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """(keys, values) arrays in matching (unordered) positions."""
        mask = self._keys != _EMPTY
        return self._keys[mask].copy(), self._vals[mask].copy()

    # ------------------------------------------------------------------
    def _maybe_grow(self, incoming: int) -> None:
        while (self._size + incoming) > self._max_load * self.capacity:
            old_keys, old_vals = self.items()
            self._alloc(self._log2cap + 1)
            self._size = 0
            if len(old_keys):
                self._insert_unique(old_keys, old_vals)

    def insert(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Batch-insert ``keys[i] -> values[i]`` (overwrites existing keys)."""
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if keys.shape != values.shape or keys.ndim != 1:
            raise ValueError("keys and values must be matching 1-D arrays")
        if len(keys) == 0:
            return
        if (keys < 0).any():
            raise ValueError("keys must be non-negative")
        # Deduplicate within the batch: keep the last occurrence of each key.
        uniq, first_idx = np.unique(keys[::-1], return_index=True)
        take = len(keys) - 1 - first_idx
        self._maybe_grow(len(uniq))
        self._insert_unique(keys[take], values[take])

    def _insert_unique(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Insert a batch of *distinct* keys."""
        shift = 64 - self._log2cap
        mask = self.capacity - 1
        idx = _hash(keys, shift) & mask
        pending = np.arange(len(keys))
        tkeys, tvals = self._keys, self._vals
        while len(pending):
            slots = idx[pending]
            slot_keys = tkeys[slots]
            is_match = slot_keys == keys[pending]
            is_empty = slot_keys == _EMPTY
            # Overwrites of already-present keys are conflict-free.
            if is_match.any():
                m = pending[is_match]
                tvals[idx[m]] = values[m]
            # Placements into empty slots: only one writer per slot may win
            # this round; losers re-check the (now occupied) slot next round.
            placed = np.zeros(len(pending), dtype=bool)
            if is_empty.any():
                cand = pending[is_empty]
                cand_slots = idx[cand]
                uniq_slots, first = np.unique(cand_slots, return_index=True)
                winners = cand[first]
                tkeys[idx[winners]] = keys[winners]
                tvals[idx[winners]] = values[winners]
                self._size += len(winners)
                placed_mask = np.zeros(len(cand), dtype=bool)
                placed_mask[first] = True
                placed[is_empty] = placed_mask
            done = is_match | placed
            pending = pending[~done]
            idx[pending] = (idx[pending] + 1) & mask

    def get(self, keys: np.ndarray, default: int = -1) -> np.ndarray:
        """Batch lookup; missing keys map to ``default``."""
        keys = np.asarray(keys, dtype=np.int64)
        scalar = keys.ndim == 0
        keys = np.atleast_1d(keys)
        out = np.full(len(keys), default, dtype=np.int64)
        if len(keys) == 0 or self._size == 0:
            return int(out[0]) if scalar else out
        shift = 64 - self._log2cap
        mask = self.capacity - 1
        idx = _hash(keys, shift) & mask
        pending = np.arange(len(keys))
        tkeys, tvals = self._keys, self._vals
        while len(pending):
            slots = idx[pending]
            slot_keys = tkeys[slots]
            is_match = slot_keys == keys[pending]
            is_empty = slot_keys == _EMPTY
            if is_match.any():
                m = pending[is_match]
                out[m] = tvals[idx[m]]
            pending = pending[~(is_match | is_empty)]
            idx[pending] = (idx[pending] + 1) & mask
        return int(out[0]) if scalar else out

    def contains(self, keys: np.ndarray) -> np.ndarray:
        """Boolean membership test for a batch of keys."""
        sentinel = np.int64(np.iinfo(np.int64).min)
        return self.get(keys, default=int(sentinel)) != sentinel
