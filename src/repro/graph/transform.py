"""Edge-list transforms: orderings, symmetrization, simplification.

The paper's block partitionings distribute vertices "in natural (or some
computed) ordering" — these transforms produce such computed orderings
(degree sort, random shuffle, community grouping) as global relabelings,
plus the standard preprocessing operations (symmetrize, deduplicate,
extract induced subgraphs).  All operate on plain ``(m, 2)`` edge arrays so
they compose with the generators and the binary I/O.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "relabel",
    "degree_order",
    "random_order",
    "symmetrize",
    "simplify",
    "induced_subgraph",
]


def relabel(edges: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Apply a vertex permutation: new id of vertex ``v`` is ``perm[v]``.

    ``perm`` must be a permutation of ``0..n-1`` covering every endpoint.
    """
    edges = np.asarray(edges, dtype=np.int64)
    perm = np.asarray(perm, dtype=np.int64)
    n = len(perm)
    if len(np.unique(perm)) != n or (len(perm) and
                                     (perm.min() < 0 or perm.max() >= n)):
        raise ValueError("perm must be a permutation of 0..n-1")
    if len(edges) and edges.max() >= n:
        raise ValueError("edge endpoints exceed permutation length")
    return perm[edges]


def degree_order(edges: np.ndarray, n: int, descending: bool = True
                 ) -> np.ndarray:
    """Permutation placing vertices in (total-)degree order.

    With ``descending=True`` the heaviest vertices receive the lowest new
    ids — the ordering that concentrates hub work in the *first* block
    under vertex-block partitioning (a worst case worth benchmarking), and
    that many compression schemes prefer.
    """
    edges = np.asarray(edges, dtype=np.int64)
    deg = np.bincount(edges.reshape(-1), minlength=n)
    key = -deg if descending else deg
    order = np.lexsort((np.arange(n), key))  # stable: ties by old id
    perm = np.empty(n, dtype=np.int64)
    perm[order] = np.arange(n, dtype=np.int64)
    return perm


def random_order(n: int, seed: int = 0) -> np.ndarray:
    """A seeded random permutation (destroys any natural locality)."""
    rng = np.random.default_rng(seed)
    return rng.permutation(n).astype(np.int64)


def symmetrize(edges: np.ndarray) -> np.ndarray:
    """Add the reverse of every edge (deduplicated)."""
    edges = np.asarray(edges, dtype=np.int64)
    if len(edges) == 0:
        return edges.copy()
    both = np.concatenate([edges, edges[:, ::-1]])
    return np.unique(both, axis=0)


def simplify(edges: np.ndarray, drop_self_loops: bool = True) -> np.ndarray:
    """Remove duplicate edges (and self-loops by default)."""
    edges = np.asarray(edges, dtype=np.int64)
    if len(edges) == 0:
        return edges.copy()
    out = np.unique(edges, axis=0)
    if drop_self_loops:
        out = out[out[:, 0] != out[:, 1]]
    return out


def induced_subgraph(
    edges: np.ndarray, keep: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Induced subgraph on ``keep`` (bool mask or vertex-id array).

    Returns ``(new_edges, old_ids)``: the kept vertices are renumbered
    ``0..k-1`` in ascending old-id order and ``old_ids[new]`` recovers the
    original id.
    """
    edges = np.asarray(edges, dtype=np.int64)
    keep = np.asarray(keep)
    if keep.dtype == bool:
        old_ids = np.flatnonzero(keep).astype(np.int64)
    else:
        old_ids = np.unique(keep.astype(np.int64))
    if len(old_ids) and old_ids.min() < 0:
        raise ValueError("vertex ids must be non-negative")
    n_old = int(max(
        old_ids.max() + 1 if len(old_ids) else 0,
        edges.max() + 1 if len(edges) else 0,
    ))
    lookup = np.full(n_old, -1, dtype=np.int64)
    lookup[old_ids] = np.arange(len(old_ids), dtype=np.int64)
    if len(edges):
        a = lookup[edges[:, 0]]
        b = lookup[edges[:, 1]]
        mask = (a >= 0) & (b >= 0)
        new_edges = np.stack([a[mask], b[mask]], axis=1)
    else:
        new_edges = edges.copy()
    return new_edges, old_ids
