"""Distributed graph construction (paper §III-A).

Each rank starts with an arbitrary chunk of the global edge list (from the
striped reader or a generator).  Edges are redistributed with
``alltoallv`` so every rank receives all out-edges of its owned vertices;
a second exchange with reversed edges delivers the in-edges.  The received
edge arrays are then converted to the CSR-like local representation with
ghost relabeling (:class:`~repro.graph.distgraph.DistGraph`).

The two stages are timed separately because Table III of the paper reports
them separately (Exch and LConv columns).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..partition.base import Partition
from ..partition.grid import GridEdgePartition
from ..runtime import SUM, Communicator
from .csr import build_csr, sorted_unique
from .distgraph import DistGraph, GridGraph
from .hashmap import IntHashMap

__all__ = ["BuildStats", "build_dist_graph", "build_dist_graph_with_stats",
           "build_dist_graph_from_file", "build_grid_graph"]


@dataclass(frozen=True)
class BuildStats:
    """Per-rank timings and sizes of the construction stages."""

    exchange_s: float  # edge redistribution (both directions)
    convert_s: float  # CSR conversion + ghost relabeling
    m_out: int  # out-edges received (local graph size)
    m_in: int  # in-edges received

    @property
    def total_s(self) -> float:
        return self.exchange_s + self.convert_s


def _grouped_send(
    owners: np.ndarray, nparts: int, *columns: np.ndarray,
) -> tuple[list[np.ndarray], np.ndarray]:
    """Order each column by destination rank (stable within a rank).

    Returns ``(ordered_columns, counts)``, ready for
    ``comm.alltoallv_flat(col, counts)`` — the zero-copy path; the old
    ``np.split`` + object ``alltoallv`` form pickled every part (PERF002).
    """
    order = np.argsort(owners, kind="stable")
    counts = np.bincount(owners, minlength=nparts)
    return [col[order] for col in columns], counts


def build_dist_graph_with_stats(
    comm: Communicator,
    edges_chunk: np.ndarray,
    partition: Partition,
    edge_values: np.ndarray | None = None,
) -> tuple[DistGraph, BuildStats]:
    """Collectively build the distributed graph from per-rank edge chunks.

    Parameters
    ----------
    edges_chunk:
        This rank's ``(m_chunk, 2)`` slice of the global directed edge list.
        Any distribution of edges across ranks is accepted.
    partition:
        Vertex ownership; must have ``nparts == comm.size`` and ``n_global``
        covering every vertex id in the edge list.
    edge_values:
        Optional float64 weight per chunk edge; weights travel with their
        edges through both exchanges and land in ``g.out_values`` /
        ``g.in_values``, aligned with the adjacency arrays.  All ranks must
        agree on whether values are provided.

    Returns
    -------
    (graph, stats):
        This rank's :class:`DistGraph` and its stage timings.
    """
    edges_chunk = np.ascontiguousarray(edges_chunk, dtype=np.int64)
    if edges_chunk.ndim != 2 or edges_chunk.shape[1] != 2:
        raise ValueError("edges_chunk must have shape (m, 2)")
    if partition.nparts != comm.size:
        raise ValueError(
            f"partition has {partition.nparts} parts but world size is {comm.size}")
    if edge_values is not None:
        edge_values = np.ascontiguousarray(edge_values, dtype=np.float64)
        if edge_values.shape != (len(edges_chunk),):
            raise ValueError("edge_values must have one entry per chunk edge")

    rank, p = comm.rank, comm.size
    with comm.region("build.exchange"):
        t0 = time.perf_counter()
        m_global = comm.allreduce(len(edges_chunk), SUM)

        # Out-edges: redistribute by owner of the source endpoint.
        src, dst = edges_chunk[:, 0], edges_chunk[:, 1]
        owners = partition.owner_of(src)
        (send_src, send_dst), counts_out = _grouped_send(owners, p, src, dst)
        out_src_g, _ = comm.alltoallv_flat(send_src, counts_out)
        out_dst_g, _ = comm.alltoallv_flat(send_dst, counts_out)

        # In-edges: reverse the order of edges and redistribute by the owner
        # of the (original) destination endpoint.
        owners_in = partition.owner_of(dst)
        (send_dst_in, send_src_in), counts_in = _grouped_send(
            owners_in, p, dst, src)
        in_dst_g, _ = comm.alltoallv_flat(send_dst_in, counts_in)
        in_src_g, _ = comm.alltoallv_flat(send_src_in, counts_in)

        out_vals = in_vals = None
        if edge_values is not None:
            (send_v_out,), _ = _grouped_send(owners, p, edge_values)
            out_vals, _ = comm.alltoallv_flat(send_v_out, counts_out)
            (send_v_in,), _ = _grouped_send(owners_in, p, edge_values)
            in_vals, _ = comm.alltoallv_flat(send_v_in, counts_in)
        exchange_s = time.perf_counter() - t0

    with comm.region("build.convert"):
        t0 = time.perf_counter()
        n_loc = partition.n_owned(rank)
        owned = partition.owned_gids(rank)

        out_rows = partition.to_local(rank, out_src_g)
        out_order = np.argsort(out_rows, kind="stable")
        out_indexes, out_adj_g = build_csr(n_loc, out_rows, out_dst_g)
        in_rows = partition.to_local(rank, in_dst_g)
        in_order = np.argsort(in_rows, kind="stable")
        in_indexes, in_adj_g = build_csr(n_loc, in_rows, in_src_g)
        if edge_values is not None:
            out_vals = out_vals[out_order]
            in_vals = in_vals[in_order]

        # Ghost discovery: every adjacent vertex not owned here.
        neighbors = np.concatenate([out_adj_g, in_adj_g])
        if len(neighbors):
            uniq = sorted_unique(neighbors)
            ghost_gids = uniq[partition.owner_of(uniq) != rank]
        else:
            ghost_gids = np.empty(0, dtype=np.int64)

        unmap = np.concatenate([owned, ghost_gids])
        gmap = IntHashMap(capacity_hint=len(unmap))
        gmap.insert(unmap, np.arange(len(unmap), dtype=np.int64))

        out_edges = gmap.get(out_adj_g)
        in_edges = gmap.get(in_adj_g)
        ghost_tasks = (
            partition.owner_of(ghost_gids)
            if len(ghost_gids)
            else np.empty(0, dtype=np.int64)
        )
        convert_s = time.perf_counter() - t0

    g = DistGraph(
        rank=rank,
        nparts=p,
        n_global=partition.n_global,
        m_global=int(m_global),
        partition=partition,
        out_indexes=out_indexes,
        out_edges=out_edges,
        in_indexes=in_indexes,
        in_edges=in_edges,
        unmap=unmap,
        ghost_tasks=ghost_tasks,
        map=gmap,
        out_values=out_vals,
        in_values=in_vals,
    )
    stats = BuildStats(
        exchange_s=exchange_s,
        convert_s=convert_s,
        m_out=g.m_out,
        m_in=g.m_in,
    )
    return g, stats


def build_grid_graph(
    comm: Communicator,
    edges_chunk: np.ndarray,
    partition: GridEdgePartition,
    edge_values: np.ndarray | None = None,
    symmetrize: bool = False,
) -> GridGraph:
    """Collectively build the 2-D checkerboard edge-block distribution.

    Unlike the 1-D builder, each edge travels to exactly **one** rank —
    the grid block ``(row_of(owner(dst)), col_of(owner(src)))`` — and is
    stored twice locally (td and bu CSR views).  There is no ghost
    relabeling: per-phase frontier state is exchanged along the grid's
    rows and columns instead (:mod:`repro.analytics.frontier2d`).

    Parameters
    ----------
    symmetrize:
        Also deliver the reversed edge ``v → u`` for every input edge, so
        in-neighbor scans see the *undirected* adjacency (what the 2-D WCC
        port needs).  ``m_global`` still counts the original edges.
    """
    edges_chunk = np.ascontiguousarray(edges_chunk, dtype=np.int64)
    if edges_chunk.ndim != 2 or edges_chunk.shape[1] != 2:
        raise ValueError("edges_chunk must have shape (m, 2)")
    if not isinstance(partition, GridEdgePartition):
        raise TypeError("build_grid_graph needs a GridEdgePartition")
    if partition.nparts != comm.size:
        raise ValueError(
            f"partition has {partition.nparts} parts but world size is {comm.size}")
    if edge_values is not None:
        edge_values = np.ascontiguousarray(edge_values, dtype=np.float64)
        if edge_values.shape != (len(edges_chunk),):
            raise ValueError("edge_values must have one entry per chunk edge")

    rank, p = comm.rank, comm.size
    c = partition.grid_cols
    with comm.region("build2d.exchange"):
        m_global = comm.allreduce(len(edges_chunk), SUM)
        src, dst = edges_chunk[:, 0], edges_chunk[:, 1]
        if symmetrize:
            src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
            if edge_values is not None:
                edge_values = np.concatenate([edge_values, edge_values])
        # Block (i, j) <=> rank i*c + j.
        blocks = (partition.owner_of(dst) // c) * c + partition.owner_of(src) % c
        (send_src, send_dst), counts = _grouped_send(blocks, p, src, dst)
        blk_src, _ = comm.alltoallv_flat(send_src, counts)
        blk_dst, _ = comm.alltoallv_flat(send_dst, counts)
        blk_vals = None
        if edge_values is not None:
            (send_vals,), _ = _grouped_send(blocks, p, edge_values)
            blk_vals, _ = comm.alltoallv_flat(send_vals, counts)

    with comm.region("build2d.convert"):
        i, j = partition.grid_coords(rank)
        if i >= 0:
            row_lo, row_hi = partition.row_range(i)
            col_counts = partition.col_chunk_counts(j)
            col_unmap = partition.col_slice_gids(j)
            n_row = row_hi - row_lo
            n_col = len(col_unmap)
            v_idx = blk_dst - row_lo
            u_idx = partition.col_index_of(j, blk_src)
            td_indexes, td_edges = build_csr(n_col, u_idx, v_idx)
            bu_indexes, bu_edges = build_csr(n_row, v_idx, u_idx)
            td_vals = bu_vals = None
            if blk_vals is not None:
                td_vals = blk_vals[np.argsort(u_idx, kind="stable")]
                bu_vals = blk_vals[np.argsort(v_idx, kind="stable")]
        else:
            row_lo = 0
            col_counts = np.empty(0, dtype=np.int64)
            col_unmap = np.empty(0, dtype=np.int64)
            td_indexes = bu_indexes = np.zeros(1, dtype=np.int64)
            td_edges = bu_edges = np.empty(0, dtype=np.int64)
            td_vals = bu_vals = (np.empty(0, dtype=np.float64)
                                 if blk_vals is not None else None)

    return GridGraph(
        rank=rank,
        nparts=p,
        n_global=partition.n_global,
        m_global=int(m_global),
        partition=partition,
        grid_row=i,
        grid_col=j,
        row_lo=int(row_lo),
        td_indexes=td_indexes,
        td_edges=td_edges,
        bu_indexes=bu_indexes,
        bu_edges=bu_edges,
        col_counts=col_counts,
        col_unmap=col_unmap,
        td_values=td_vals,
        bu_values=bu_vals,
        symmetrized=symmetrize,
    )


def build_dist_graph(
    comm: Communicator,
    edges_chunk: np.ndarray,
    partition: Partition,
    edge_values: np.ndarray | None = None,
) -> DistGraph:
    """Like :func:`build_dist_graph_with_stats`, returning only the graph."""
    g, _ = build_dist_graph_with_stats(comm, edges_chunk, partition,
                                       edge_values=edge_values)
    return g


def build_dist_graph_from_file(
    comm: Communicator,
    path,
    partition: Partition,
    batch_edges: int = 1 << 22,
    width: int = 32,
) -> DistGraph:
    """Streaming construction directly from a shared binary edge file.

    The paper notes ingestion is "the most memory-intensive part" (24m
    bytes of aggregate memory to stage the exchange).  This builder bounds
    the staging memory instead: each rank reads and exchanges its share in
    ``batch_edges``-sized pieces, accumulating only the *received* edges
    (which are what the final structure stores anyway); the one-off full
    chunk buffer never exists.

    All ranks must pass the same ``batch_edges`` (the exchange loop is
    collective, padded to the global maximum batch count).
    """
    from ..io.edgelist import count_edges, read_edge_range
    from ..io.striped import edge_share
    from ..runtime import MAX

    m = count_edges(path, width)
    start, count = edge_share(m, comm.size, comm.rank)
    n_batches = int(comm.allreduce(-(-count // batch_edges) if count else 0,
                                   MAX))
    p = comm.size
    out_src_parts: list[np.ndarray] = []
    out_dst_parts: list[np.ndarray] = []

    with comm.region("build.stream"):
        for b in range(n_batches):
            lo = start + b * batch_edges
            n_here = max(0, min(batch_edges, start + count - lo))
            chunk = read_edge_range(path, lo, n_here, width)
            src, dst = chunk[:, 0], chunk[:, 1]
            owners = partition.owner_of(src)
            (send_src, send_dst), counts_b = _grouped_send(owners, p, src, dst)
            o_s, _ = comm.alltoallv_flat(send_src, counts_b)
            o_d, _ = comm.alltoallv_flat(send_dst, counts_b)
            out_src_parts.append(o_s)
            out_dst_parts.append(o_d)

    # Hand the accumulated received edges to the normal builder: their
    # sources are already owned here, so the out-direction exchange is a
    # self-delivery and only the in-direction redistribution does work.
    received = np.stack(
        [np.concatenate(out_src_parts) if out_src_parts else
         np.empty(0, dtype=np.int64),
         np.concatenate(out_dst_parts) if out_dst_parts else
         np.empty(0, dtype=np.int64)],
        axis=1,
    )
    g, _ = build_dist_graph_with_stats(comm, received, partition)
    return g
