"""Compressed adjacency storage (paper §VII future work).

The paper's first follow-on direction is "a performance-portable graph
compression method that will allow us to execute graph analytics with an
even smaller memory footprint".  This module implements the standard
WebGraph-family scheme on top of the local CSR: per-row **delta encoding**
of sorted adjacency lists followed by **varint (LEB128) byte encoding**,
with both the encoder and the decoder fully vectorized so decompression
runs at array speed rather than per-edge Python speed.

Typical footprints on the web-crawl stand-in are 3-5x below the int64 CSR
(see ``bench_extensions.py``).  :class:`CompressedCSR` supports per-row
decode (for BFS-like frontier expansion) and full decode (for
PageRank-like sweeps).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CompressedCSR", "varint_encode", "varint_decode"]


def varint_encode(values: np.ndarray) -> np.ndarray:
    """LEB128-encode a non-negative int64 array into a uint8 stream.

    Each value is emitted as 1-10 bytes, 7 payload bits per byte, the high
    bit set on every byte except a value's last.  Vectorized: one pass per
    byte position (at most 10).
    """
    values = np.asarray(values, dtype=np.int64)
    if len(values) and values.min() < 0:
        raise ValueError("varint encoding requires non-negative values")
    if len(values) == 0:
        return np.empty(0, dtype=np.uint8)
    u = values.astype(np.uint64)
    # Bytes needed per value: ceil(bitlength / 7), minimum 1.
    nbytes = np.ones(len(u), dtype=np.int64)
    probe = u >> np.uint64(7)
    while probe.any():
        nbytes += (probe > 0).astype(np.int64)
        probe >>= np.uint64(7)
    total = int(nbytes.sum())
    out = np.empty(total, dtype=np.uint8)
    # Output offset of each value's first byte.
    starts = np.concatenate(([0], np.cumsum(nbytes)[:-1]))
    remaining = u.copy()
    alive = np.arange(len(u))
    pos = starts.copy()
    last = starts + nbytes - 1
    while len(alive):
        byte = (remaining[alive] & np.uint64(0x7F)).astype(np.uint8)
        is_last = pos[alive] == last[alive]
        out[pos[alive]] = byte | np.where(is_last, 0, 0x80).astype(np.uint8)
        remaining[alive] >>= np.uint64(7)
        pos[alive] += 1
        alive = alive[~is_last]
    return out


def varint_decode(stream: np.ndarray, count: int | None = None) -> np.ndarray:
    """Decode a LEB128 uint8 stream back into an int64 array.

    Vectorized: continuation bits mark value boundaries; payload bits are
    shifted by their within-value byte index and summed per value.
    """
    stream = np.asarray(stream, dtype=np.uint8)
    if len(stream) == 0:
        return np.empty(0, dtype=np.int64)
    cont = (stream & 0x80) != 0
    if cont[-1]:
        raise ValueError("truncated varint stream")
    # Value index of every byte: number of terminators before it.
    ends = ~cont
    value_idx = np.concatenate(([0], np.cumsum(ends)[:-1]))
    n_values = int(ends.sum())
    if count is not None and n_values != count:
        raise ValueError(f"expected {count} values, stream holds {n_values}")
    # Byte position within its value: global position minus the position
    # of the value's first byte.
    positions = np.arange(len(stream), dtype=np.int64)
    value_starts = np.concatenate(([0], positions[ends] + 1))[:-1] \
        if n_values else np.empty(0, dtype=np.int64)
    within = positions - value_starts[value_idx]
    payload = (stream & 0x7F).astype(np.uint64) << (
        np.uint64(7) * within.astype(np.uint64))
    out = np.zeros(n_values, dtype=np.uint64)
    np.add.at(out, value_idx, payload)
    return out.astype(np.int64)


@dataclass(frozen=True)
class CompressedCSR:
    """Delta+varint compressed CSR adjacency.

    Rows are stored as sorted, delta-encoded, varint-packed byte runs.
    ``byte_indexes[v]`` is the byte offset of row ``v``'s run and
    ``lengths[v]`` its neighbor count.
    """

    n_rows: int
    lengths: np.ndarray  # (n_rows,) neighbor counts
    byte_indexes: np.ndarray  # (n_rows + 1,) offsets into `stream`
    stream: np.ndarray  # uint8

    # ------------------------------------------------------------------
    @classmethod
    def from_csr(cls, indptr: np.ndarray, adj: np.ndarray) -> "CompressedCSR":
        """Compress a CSR (row order is not preserved: rows are sorted)."""
        n = len(indptr) - 1
        lengths = np.diff(indptr).astype(np.int64)
        if len(adj) == 0:
            return cls(n_rows=n, lengths=lengths,
                       byte_indexes=np.zeros(n + 1, dtype=np.int64),
                       stream=np.empty(0, dtype=np.uint8))
        # Sort each row, then delta-encode: first element absolute, rest
        # are gaps (>= 0).  Everything is vectorized over the flat array.
        rows = np.repeat(np.arange(n, dtype=np.int64), lengths)
        order = np.lexsort((adj, rows))
        sorted_adj = adj[order].astype(np.int64)
        firsts = indptr[:-1][lengths > 0]
        deltas = np.empty_like(sorted_adj)
        deltas[1:] = sorted_adj[1:] - sorted_adj[:-1]
        deltas[firsts] = sorted_adj[firsts]
        # Per-row encode boundaries in the byte stream.
        encoded = varint_encode(deltas)
        # Byte length of each value, to compute per-row byte extents.
        value_ends = (np.asarray(encoded) & 0x80) == 0
        byte_of_value = np.cumsum(value_ends)  # 1-based value count per byte
        # bytes consumed by each value:
        ends_pos = np.flatnonzero(value_ends)
        starts_pos = np.concatenate(([0], ends_pos[:-1] + 1))
        bytes_per_value = ends_pos - starts_pos + 1
        row_bytes = np.zeros(n, dtype=np.int64)
        np.add.at(row_bytes, rows[order], bytes_per_value)
        byte_indexes = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(row_bytes, out=byte_indexes[1:])
        return cls(n_rows=n, lengths=lengths, byte_indexes=byte_indexes,
                   stream=encoded)

    # ------------------------------------------------------------------
    def row(self, v: int) -> np.ndarray:
        """Decode one row's (sorted) neighbor list."""
        if not (0 <= v < self.n_rows):
            raise IndexError(f"row {v} out of range")
        chunk = self.stream[self.byte_indexes[v] : self.byte_indexes[v + 1]]
        deltas = varint_decode(chunk, count=int(self.lengths[v]))
        return np.cumsum(deltas) if len(deltas) else deltas

    def rows(self, vs: np.ndarray) -> np.ndarray:
        """Decode the concatenated neighbor lists of several rows.

        Used by BFS-like frontier expansion: one vectorized decode of the
        gathered byte runs instead of a per-row loop.
        """
        vs = np.asarray(vs, dtype=np.int64)
        if len(vs) == 0:
            return np.empty(0, dtype=np.int64)
        starts = self.byte_indexes[vs]
        ends = self.byte_indexes[vs + 1]
        total = int((ends - starts).sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        idx = np.arange(total, dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(ends - starts)[:-1]))
        lens = ends - starts
        idx += np.repeat(starts - offsets, lens)
        deltas = varint_decode(self.stream[idx])
        # Per-row prefix sums via one global cumsum: subtract from every
        # element the cumulative total reached just before its row began.
        cs = np.cumsum(deltas)
        row_lens = self.lengths[vs]
        row_starts = np.concatenate(([0], np.cumsum(row_lens)[:-1]))
        baselines = np.where(row_starts > 0, cs[row_starts - 1], 0)
        return cs - np.repeat(baselines, row_lens)

    def decode_all(self) -> tuple[np.ndarray, np.ndarray]:
        """Decode the full structure back to (indptr, adj)."""
        indptr = np.zeros(self.n_rows + 1, dtype=np.int64)
        np.cumsum(self.lengths, out=indptr[1:])
        adj = self.rows(np.arange(self.n_rows, dtype=np.int64))
        return indptr, adj

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Resident bytes of the compressed structure."""
        return (self.stream.nbytes + self.byte_indexes.nbytes
                + self.lengths.nbytes)

    def compression_ratio(self, index_dtype=np.int64) -> float:
        """Size of the equivalent plain CSR divided by this size."""
        plain = (int(self.lengths.sum()) * np.dtype(index_dtype).itemsize
                 + (self.n_rows + 1) * np.dtype(index_dtype).itemsize)
        return plain / self.nbytes if self.nbytes else float("inf")
