"""Local compressed-sparse-row construction and segment primitives.

The per-task edge arrays received during graph construction are converted to
a CSR-like layout (paper §III-A): an ``indexes`` array of row starts and a
flat ``edges`` array of neighbor ids.  All builders are fully vectorized.

This module also provides the segment operations (per-row sums / maxima /
counts over a CSR) that the analytics use as their inner "loop over
adjacencies of v" — the innermost loop of the paper's triply-nested
structure, expressed as data-parallel array ops.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "build_csr",
    "csr_row_lengths",
    "segment_sum",
    "segment_max",
    "segment_min",
    "segment_count_nonzero",
    "expand_rows",
    "sorted_unique",
]


def sorted_unique(values: np.ndarray) -> np.ndarray:
    """Sorted distinct values via an explicit sort.

    Functionally ``np.unique`` for 1-D arrays, but implemented as
    sort + run-boundary selection: on this project's workloads (tens of
    millions of int64 keys) NumPy's ``unique`` can be more than an order
    of magnitude slower than its own ``sort``.
    """
    values = np.asarray(values)
    if len(values) == 0:
        return values.copy()
    s = np.sort(values, kind="stable")
    keep = np.empty(len(s), dtype=bool)
    keep[0] = True
    np.not_equal(s[1:], s[:-1], out=keep[1:])
    return s[keep]


def build_csr(
    n_rows: int,
    src: np.ndarray,
    dst: np.ndarray,
    dtype=np.int64,
) -> tuple[np.ndarray, np.ndarray]:
    """Build CSR ``(indptr, adj)`` from an unsorted edge list.

    Parameters
    ----------
    n_rows:
        Number of rows (local vertices).
    src, dst:
        Edge endpoint arrays; ``src`` values must lie in ``[0, n_rows)``.
        Edges are stably ordered within a row by their input position, so
        construction is deterministic.

    Returns
    -------
    (indptr, adj):
        ``indptr`` has length ``n_rows + 1``; the neighbors of row ``v`` are
        ``adj[indptr[v]:indptr[v+1]]``.
    """
    src = np.asarray(src)
    dst = np.asarray(dst)
    if src.shape != dst.shape or src.ndim != 1:
        raise ValueError("src and dst must be matching 1-D arrays")
    if len(src) and (src.min() < 0 or src.max() >= n_rows):
        raise ValueError("src ids out of range for n_rows")
    counts = np.bincount(src, minlength=n_rows)
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    order = np.argsort(src, kind="stable")
    adj = np.ascontiguousarray(dst[order], dtype=dtype)
    return indptr, adj


def csr_row_lengths(indptr: np.ndarray) -> np.ndarray:
    """Per-row neighbor counts (degrees)."""
    return np.diff(indptr)


def expand_rows(indptr: np.ndarray) -> np.ndarray:
    """Row index of every CSR entry (inverse of ``build_csr`` grouping).

    ``expand_rows([0,2,2,5]) == [0,0,2,2,2]``.
    """
    n = len(indptr) - 1
    lengths = np.diff(indptr)
    return np.repeat(np.arange(n, dtype=np.int64), lengths)


def segment_sum(indptr: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Per-row sum of ``values`` (one value per CSR entry).

    Empty rows sum to zero.  Uses ``np.add.reduceat`` with an empty-row fix.
    """
    n = len(indptr) - 1
    out = np.zeros(n, dtype=np.result_type(values.dtype, np.float64)
                   if values.dtype.kind == "f" else np.int64)
    if len(values) == 0 or n == 0:
        return out
    nonempty = indptr[:-1] < indptr[1:]
    if not nonempty.any():
        return out
    starts = indptr[:-1][nonempty]
    sums = np.add.reduceat(values, starts)
    out[nonempty] = sums
    return out


def segment_max(indptr: np.ndarray, values: np.ndarray, empty_value) -> np.ndarray:
    """Per-row maximum of ``values``; empty rows get ``empty_value``."""
    n = len(indptr) - 1
    out = np.full(n, empty_value, dtype=values.dtype if len(values) else np.int64)
    if len(values) == 0 or n == 0:
        return out
    nonempty = indptr[:-1] < indptr[1:]
    if not nonempty.any():
        return out
    starts = indptr[:-1][nonempty]
    out[nonempty] = np.maximum.reduceat(values, starts)
    return out


def segment_min(indptr: np.ndarray, values: np.ndarray, empty_value) -> np.ndarray:
    """Per-row minimum of ``values``; empty rows get ``empty_value``."""
    n = len(indptr) - 1
    out = np.full(n, empty_value, dtype=values.dtype if len(values) else np.int64)
    if len(values) == 0 or n == 0:
        return out
    nonempty = indptr[:-1] < indptr[1:]
    if not nonempty.any():
        return out
    starts = indptr[:-1][nonempty]
    out[nonempty] = np.minimum.reduceat(values, starts)
    return out


def segment_count_nonzero(indptr: np.ndarray, flags: np.ndarray) -> np.ndarray:
    """Per-row count of true entries in a boolean per-entry array."""
    return segment_sum(indptr, flags.astype(np.int64))
