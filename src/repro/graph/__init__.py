"""Distributed graph representation and construction (paper §III-A/C).

* :class:`DistGraph` — the per-rank structure of Table II (CSR out/in
  edges over relabeled local + ghost vertices, map/unmap/tasks arrays);
* :func:`build_dist_graph` — collective construction from per-rank edge
  chunks via ``alltoallv`` redistribution;
* :class:`IntHashMap` — the vectorized linear-probing global→local id map;
* :mod:`~repro.graph.csr` — CSR building and segment primitives.
"""

from .build import (
    BuildStats,
    build_dist_graph,
    build_dist_graph_from_file,
    build_dist_graph_with_stats,
    build_grid_graph,
)
from .compressed import CompressedCSR, varint_decode, varint_encode
from .csr import (
    build_csr,
    csr_row_lengths,
    expand_rows,
    segment_count_nonzero,
    segment_max,
    segment_min,
    segment_sum,
)
from .distgraph import DistGraph, GridGraph
from .hashmap import IntHashMap
from .transform import (
    degree_order,
    induced_subgraph,
    random_order,
    relabel,
    simplify,
    symmetrize,
)

__all__ = [
    "DistGraph",
    "BuildStats",
    "build_dist_graph",
    "build_dist_graph_with_stats",
    "build_dist_graph_from_file",
    "build_grid_graph",
    "GridGraph",
    "IntHashMap",
    "build_csr",
    "csr_row_lengths",
    "expand_rows",
    "segment_sum",
    "segment_max",
    "segment_min",
    "segment_count_nonzero",
    "CompressedCSR",
    "varint_encode",
    "varint_decode",
    "relabel",
    "degree_order",
    "random_order",
    "symmetrize",
    "simplify",
    "induced_subgraph",
]
