"""Machine-model calibration from live runtime microbenchmarks.

The presets in :mod:`repro.perf.model` use constants from the paper's
reported throughputs.  For predictions about the *local* runtime (e.g.
sanity-checking the model against measured thread-rank executions), this
module fits the alpha-beta constants and the edge-processing rate from
microbenchmarks of the actual communicator and kernels:

* ``alpha``/``beta`` — least-squares fit of ``alltoallv`` round times over
  a sweep of payload sizes;
* ``edge_rate`` — measured segmented-sum throughput over a CSR of the
  requested size (the analytics' inner loop);
* ``io_bandwidth`` — timed re-read of a scratch file.
"""

from __future__ import annotations

import time

import numpy as np

from ..graph.csr import build_csr, segment_sum
from ..runtime import MAX, Communicator, run_spmd
from .model import MachineModel

__all__ = ["calibrate_local", "fit_alpha_beta"]


def fit_alpha_beta(sizes: np.ndarray, times: np.ndarray) -> tuple[float, float]:
    """Least-squares fit of ``t = alpha + beta * bytes``.

    Negative fitted values are clamped to tiny positives (measurement noise
    on a fast loopback can produce a slightly negative intercept).
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    times = np.asarray(times, dtype=np.float64)
    if len(sizes) < 2:
        raise ValueError("need at least two samples")
    beta, alpha = np.polyfit(sizes, times, 1)
    return max(float(alpha), 1e-9), max(float(beta), 1e-15)


def _comm_sweep(comm: Communicator, payload_sizes) -> list[float]:
    """Median alltoallv round time per payload size (per-rank bytes)."""
    out = []
    for nbytes in payload_sizes:
        n_elems = max(1, nbytes // 8)
        send = [np.zeros(n_elems, dtype=np.int64) for _ in range(comm.size)]
        samples = []
        for _ in range(5):
            comm.barrier()
            t0 = time.perf_counter()
            comm.alltoallv(send)
            samples.append(time.perf_counter() - t0)
        t = float(np.median(samples))
        out.append(comm.allreduce(t, MAX))
    return out


def _edge_rate(n: int, m: int, seed: int = 1) -> float:
    """Edges/second of the segmented-sum kernel on one rank."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, m).astype(np.int64)
    dst = rng.integers(0, n, m).astype(np.int64)
    indptr, adj = build_csr(n, src, dst)
    values = rng.random(n)
    segment_sum(indptr, values[adj])  # warm-up
    t0 = time.perf_counter()
    reps = 5
    for _ in range(reps):
        segment_sum(indptr, values[adj])
    dt = (time.perf_counter() - t0) / reps
    return m / dt


def calibrate_local(
    nranks: int = 4,
    payload_sizes=(1 << 10, 1 << 14, 1 << 18, 1 << 21),
    kernel_n: int = 50_000,
    kernel_m: int = 500_000,
) -> MachineModel:
    """Measure a :class:`MachineModel` for this host's thread runtime.

    The fitted model predicts the in-process runtime itself — useful for
    validating the modeling pipeline end-to-end (model vs. measured times
    on the same machine; see ``tests/test_calibrate.py``).
    """

    times = run_spmd(nranks, _comm_sweep, payload_sizes)[0]
    # Bytes leaving one rank per round: (p-1) peers x payload.
    per_rank_bytes = np.array(payload_sizes, dtype=np.float64) * max(
        1, nranks - 1)
    alpha, beta = fit_alpha_beta(per_rank_bytes, np.array(times))

    rate = _edge_rate(kernel_n, kernel_m)

    return MachineModel(
        name=f"calibrated-local-{nranks}ranks",
        alpha=alpha,
        beta=beta,
        edge_rate=rate,
        ghost_penalty=2.0 / rate,  # ghost access ≈ two extra edge touches
        io_bandwidth=1.0e9,
        node_memory=4.0e9,
    )
