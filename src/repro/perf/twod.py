"""2-D (checkerboard) partitioning cost model — the road not taken.

The paper *chooses* "a memory-efficient one-dimensional graph
representation" (§III-A); the classic alternative distributes the adjacency
matrix over a √p × √p process grid, turning the PageRank-like exchange into
row/column segment collectives whose volume scales as O(n/√p) per rank
instead of O(ghosts).  This module models that alternative exactly (per-rank
edge counts and row/column traffic computed from the real edge list), so
the 1-D/2-D trade-off the paper implicitly made can be quantified —
see ``bench_extensions.py``.

Model (standard 2-D SpMV schedule, e.g. Yoo et al.):

* edge (u, v) lives on grid block ``(row_of(u), col_of(v))``;
* each iteration, block (i, j) receives the x-entries of its column slice
  (broadcast down the column: one message, ``n_j`` values) and reduces
  partial sums along its row (one message, ``n_i`` values);
* per-rank work is its block's edge count.
"""

from __future__ import annotations

import numpy as np

from ..partition.block import VertexBlockPartition
from ..partition.grid import grid_shape
from .costmodel import PerRankCosts

# grid_shape moved to repro.partition.grid so the cost model and the
# runnable GridEdgePartition share one factorization (including the
# prime-p GridShapeError / idle-rank fallback); re-exported here for
# backward compatibility.
__all__ = ["pagerank_like_costs_2d", "grid_shape"]


def pagerank_like_costs_2d(
    edges: np.ndarray, n: int, p: int
) -> PerRankCosts:
    """Per-rank volumes of one PageRank-like iteration on a 2-D grid.

    Vertices are block-distributed along both grid dimensions; rank
    ``(i, j)`` (flattened row-major) owns the edges whose source falls in
    row-slice ``i`` and destination in column-slice ``j``.
    """
    edges = np.asarray(edges, dtype=np.int64)
    # Prime p models the nearest smaller grid with idle ranks, exactly the
    # layout GridEdgePartition runs (idle ranks do no work, move no bytes).
    rows, cols = grid_shape(p, fallback=True)
    row_part = VertexBlockPartition(n, rows)
    col_part = VertexBlockPartition(n, cols)

    ri = row_part.owner_of(edges[:, 0]) if len(edges) else edges[:, 0]
    cj = col_part.owner_of(edges[:, 1]) if len(edges) else edges[:, 1]
    block = ri * cols + cj
    work = np.bincount(block, minlength=p).astype(np.int64)

    # Traffic per rank: receive the column slice's x values (gather along
    # the column, n/cols values from each of rows-1 peers is the classic
    # allgather; modeled as the slice size) + send row partials (n/rows).
    ghost_recv = np.zeros(p, dtype=np.int64)
    ghost_send = np.zeros(p, dtype=np.int64)
    peer_count = np.zeros(p, dtype=np.int64)
    for i in range(rows):
        for j in range(cols):
            r = i * cols + j
            ghost_recv[r] = col_part.n_owned(j)  # x slice broadcast
            ghost_send[r] = row_part.n_owned(i)  # partial-sum reduction
            peer_count[r] = (rows - 1) + (cols - 1)
    return PerRankCosts(
        nparts=p,
        work_edges=2 * work,  # both directions, to match the 1-D model
        ghost_recv=ghost_recv,
        ghost_send=ghost_send,
        peer_count=peer_count,
        rounds=2,  # column phase + row phase
    )
