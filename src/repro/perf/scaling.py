"""Scaling-study harness: measured small-scale runs + modeled paper scale.

The paper's scaling experiments (Figs 1–3, Tables III–IV) run on 8–1024
Blue Waters nodes.  In-process thread ranks top out far below that, so each
bench pairs two views:

* **measured** — real `run_spmd` executions at small rank counts, timing
  the actual analytics;
* **modeled** — exact per-rank work/traffic volumes extracted from the
  partitioned edge list (:mod:`repro.perf.costmodel`) fed through a
  :class:`~repro.perf.model.MachineModel`, evaluated at any node count.

Who wins, by what factor, and where curves flatten is decided by the
volumes, which are exact; the machine model only supplies constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..partition.base import Partition
from .costmodel import (
    PhasePrediction,
    bfs_like_costs,
    pagerank_like_costs,
    predict_iteration,
)
from .model import MachineModel

__all__ = [
    "ScalingPoint",
    "ConstructionModel",
    "model_analytic_time",
    "strong_scaling_model",
    "weak_scaling_model",
    "model_construction",
]


@dataclass(frozen=True)
class ScalingPoint:
    """One (node count, predicted time) sample of a scaling curve."""

    nodes: int
    time_s: float
    prediction: PhasePrediction

    def speedup_over(self, base: "ScalingPoint") -> float:
        """Speedup relative to a baseline point (paper Fig. 2 style)."""
        return base.time_s / self.time_s if self.time_s > 0 else float("inf")


def model_analytic_time(
    edges: np.ndarray,
    part: Partition,
    machine: MachineModel,
    analytic: str = "pagerank",
    n_iters: int = 1,
    n_levels: int = 16,
    bytes_per_value: int = 8,
) -> ScalingPoint:
    """Modeled execution time of one analytic on one partitioned graph.

    ``analytic`` selects the cost class: ``"pagerank"``/``"labelprop"``
    (per-iteration volumes × ``n_iters``) or ``"bfs"``/``"harmonic"``
    (one traversal with ``n_levels`` synchronization rounds).
    """
    if analytic in ("pagerank", "labelprop", "wcc-color"):
        costs = pagerank_like_costs(edges, part)
        pred = predict_iteration(costs, machine, bytes_per_value)
        scale = n_iters
    elif analytic in ("bfs", "harmonic", "scc", "kcore"):
        costs = bfs_like_costs(edges, part, n_levels)
        pred = predict_iteration(costs, machine, bytes_per_value)
        scale = 1
    else:
        raise ValueError(f"unknown analytic class {analytic!r}")
    scaled = PhasePrediction(comp=pred.comp * scale, comm=pred.comm * scale,
                             idle=pred.idle * scale)
    return ScalingPoint(nodes=part.nparts, time_s=scaled.total,
                        prediction=scaled)


def strong_scaling_model(
    edges: np.ndarray,
    partition_factory: Callable[[int], Partition],
    node_counts: Sequence[int],
    machine: MachineModel,
    analytic: str = "labelprop",
    n_iters: int = 1,
    n_levels: int = 16,
) -> list[ScalingPoint]:
    """Fixed graph, growing node counts (paper Fig. 2)."""
    return [
        model_analytic_time(edges, partition_factory(p), machine,
                            analytic=analytic, n_iters=n_iters,
                            n_levels=n_levels)
        for p in node_counts
    ]


def weak_scaling_model(
    edges_for_nodes: Callable[[int], np.ndarray],
    partition_factory: Callable[[int, int], Partition],
    node_counts: Sequence[int],
    machine: MachineModel,
    analytic: str = "pagerank",
    n_iters: int = 1,
    n_levels: int = 16,
) -> list[ScalingPoint]:
    """Per-node problem size held constant (paper Fig. 1).

    ``edges_for_nodes(p)`` generates the graph for ``p`` nodes;
    ``partition_factory(n, p)`` partitions its vertex set.
    """
    points = []
    for p in node_counts:
        edges = edges_for_nodes(p)
        n = int(edges.max()) + 1 if len(edges) else 1
        part = partition_factory(n, p)
        points.append(
            model_analytic_time(edges, part, machine, analytic=analytic,
                                n_iters=n_iters, n_levels=n_levels))
    return points


@dataclass(frozen=True)
class ConstructionModel:
    """Modeled Table III row: construction-stage times at paper scale."""

    nodes: int
    read_s: float
    exchange_s: float
    convert_s: float

    @property
    def total_s(self) -> float:
        return self.read_s + self.exchange_s + self.convert_s

    def rate_ge_s(self, m_edges: float) -> float:
        """Processing rate in billions of edges per second (in+out)."""
        return (2.0 * m_edges / self.total_s) / 1e9 if self.total_s else 0.0


def model_construction(
    m_edges: float, nodes: int, machine: MachineModel, width: int = 32
) -> ConstructionModel:
    """Model the ingestion pipeline of §III-A at any scale.

    Read: striped parallel read of ``8m`` bytes (two ids per edge).
    Exchange: both edge directions traverse the network once —
    ``2 × 2 × idsize × m / p`` bytes per task in an all-to-all.
    Convert: counting sort + relabel touches each of the ``2m`` local edge
    slots a small constant number of times.
    """
    id_bytes = width // 8
    file_bytes = 2.0 * id_bytes * m_edges
    read_s = machine.read_time(file_bytes, nodes)
    per_task_bytes = 2.0 * file_bytes / nodes
    exchange_s = machine.comm_time(messages=2.0 * nodes, nbytes=per_task_bytes)
    convert_edges = 3.0 * 2.0 * m_edges / nodes  # sort+scatter+relabel passes
    convert_s = machine.compute_time(convert_edges)
    return ConstructionModel(nodes=nodes, read_s=read_s,
                             exchange_s=exchange_s, convert_s=convert_s)
