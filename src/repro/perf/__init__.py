"""Performance modeling: machine presets, cost extraction, scaling sweeps.

Pairs the runtime's measured traces with an alpha-beta machine model so the
paper's cluster-scale experiments (Tables III–IV, Figs 1–3) can be
regenerated at any node count from exact per-rank volumes.
"""

from .breakdown import Breakdown, measured_breakdown
from .calibrate import calibrate_local, fit_alpha_beta
from .costmodel import (
    PerRankCosts,
    PhasePrediction,
    bfs_like_costs,
    pagerank_like_costs,
    predict_iteration,
)
from .model import BLUE_WATERS, COMPTON, LOCAL, MachineModel
from .twod import grid_shape, pagerank_like_costs_2d
from .scaling import (
    ConstructionModel,
    ScalingPoint,
    model_analytic_time,
    model_construction,
    strong_scaling_model,
    weak_scaling_model,
)

__all__ = [
    "MachineModel",
    "BLUE_WATERS",
    "COMPTON",
    "LOCAL",
    "PerRankCosts",
    "PhasePrediction",
    "pagerank_like_costs",
    "bfs_like_costs",
    "predict_iteration",
    "Breakdown",
    "measured_breakdown",
    "ScalingPoint",
    "ConstructionModel",
    "model_analytic_time",
    "model_construction",
    "strong_scaling_model",
    "weak_scaling_model",
    "calibrate_local",
    "fit_alpha_beta",
    "pagerank_like_costs_2d",
    "grid_shape",
]
