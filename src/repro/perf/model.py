"""Machine models: alpha-beta communication plus throughput constants.

The runtime measures *exact* per-rank work and communication volumes; this
module supplies the machine constants that turn those volumes into
predicted times at paper scale.  Predictions use the classic BSP/alpha-beta
form::

    T_comm  = alpha * messages + beta * bytes
    T_comp  = edges_processed / edge_rate  +  ghost_accesses * ghost_penalty
    T_total = max_r T_comp(r) + T_comm           (bulk-synchronous)

``ghost_penalty`` captures the paper's observation (Fig. 3 discussion) that
random partitioning inflates *computation* time through extra global/local
id lookups and lost cache locality, not just communication.

Presets approximate the paper's two platforms — Blue Waters XE6 nodes on a
Gemini interconnect, and the Compton Sandy Bridge/IB cluster — and are
deliberately round numbers: the reproduction targets scaling *shape*, not
absolute seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineModel", "BLUE_WATERS", "COMPTON", "LOCAL"]


@dataclass(frozen=True)
class MachineModel:
    """Cost constants of one platform (per MPI task = per node)."""

    name: str
    alpha: float  # seconds per point-to-point message (collective hop)
    beta: float  # seconds per byte moved between tasks
    edge_rate: float  # graph edges a task processes per second
    ghost_penalty: float  # extra seconds per ghost-vertex access
    io_bandwidth: float  # aggregate file-system read bandwidth (B/s)
    node_memory: float  # bytes of usable main memory per task

    def comm_time(self, messages: float, nbytes: float) -> float:
        """alpha-beta time for one task's traffic."""
        return self.alpha * messages + self.beta * nbytes

    def compute_time(self, edges: float, ghost_accesses: float = 0.0) -> float:
        """Kernel time for one task's share of edge work."""
        return edges / self.edge_rate + ghost_accesses * self.ghost_penalty

    def read_time(self, total_bytes: float, nodes: int) -> float:
        """Parallel read time of a striped file across ``nodes`` readers.

        Aggregate bandwidth saturates at ``io_bandwidth``; a single reader
        is limited to a 1/32 share (one Lustre client cannot drive the
        whole array), matching the paper's Table III trend of faster reads
        with more tasks.
        """
        per_node_cap = self.io_bandwidth / 32.0
        agg = min(self.io_bandwidth, per_node_cap * nodes)
        return total_bytes / agg


#: Blue Waters XE6: Gemini 3-D torus, Lustre scratch rated 960 GB/s (the
#: effective aggregate read bandwidth the paper achieves — ~1 TB in under a
#: minute — is far below the rated figure, hence the 60 GB/s constant; the
#: edge rate matches the paper's 4.4 s/iteration PageRank on 129 B edges
#: over 256 tasks, ≈0.25 GE/s per task).
BLUE_WATERS = MachineModel(
    name="blue-waters",
    alpha=3.0e-6,
    beta=1.0 / 6.0e9,
    edge_rate=2.5e8,
    ghost_penalty=4.0e-9,
    io_bandwidth=60.0e9,
    node_memory=64.0e9,
)

#: Compton: dual-socket Sandy Bridge, QDR InfiniBand, NFS-class I/O.
COMPTON = MachineModel(
    name="compton",
    alpha=2.0e-6,
    beta=1.0 / 3.0e9,
    edge_rate=2.0e8,
    ghost_penalty=5.0e-9,
    io_bandwidth=1.0e9,
    node_memory=64.0e9,
)

#: In-process thread ranks on the test host (used for sanity checks only).
LOCAL = MachineModel(
    name="local",
    alpha=5.0e-7,
    beta=1.0 / 8.0e9,
    edge_rate=2.0e8,
    ghost_penalty=5.0e-9,
    io_bandwidth=2.0e9,
    node_memory=8.0e9,
)
