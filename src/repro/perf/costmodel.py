"""Per-rank cost extraction from a partitioned edge list.

For scaling studies beyond the host's feasible thread count (the paper runs
up to 1024 nodes), we compute each rank's *exact* work and communication
volumes analytically from the edge list and partition — no threads needed —
and feed them to a :class:`~repro.perf.model.MachineModel`.  The volumes
are the same quantities the live runtime measures via its trace, which is
how the model is validated (see ``tests/test_perf``).

Two analytic classes are modeled, mirroring §III-D:

* **PageRank-like** (:func:`pagerank_like_costs`): every iteration touches
  all local edges and refreshes every ghost once.
* **BFS-like** (:func:`bfs_like_costs`): the whole traversal touches each
  edge at most once, each ghost discovery is shipped once, and every level
  costs a latency-bound synchronization round.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import sorted_unique
from ..partition.base import Partition
from .model import MachineModel

__all__ = [
    "PerRankCosts",
    "PhasePrediction",
    "pagerank_like_costs",
    "bfs_like_costs",
    "predict_iteration",
]


@dataclass(frozen=True)
class PerRankCosts:
    """Exact per-rank volumes of one analytic iteration (or traversal)."""

    nparts: int
    work_edges: np.ndarray  # edges each rank processes
    ghost_recv: np.ndarray  # ghost values each rank receives
    ghost_send: np.ndarray  # values each rank ships to peers
    peer_count: np.ndarray  # distinct communication partners
    rounds: int  # latency-bound synchronization rounds


@dataclass(frozen=True)
class PhasePrediction:
    """Modeled per-rank time components of one bulk-synchronous phase."""

    comp: np.ndarray  # per-rank compute seconds
    comm: np.ndarray  # per-rank communication seconds
    idle: np.ndarray  # per-rank wait-for-straggler seconds

    @property
    def total(self) -> float:
        """Phase wall-clock time (max compute + max comm)."""
        return float(self.comp.max() + self.comm.max()) if len(self.comp) else 0.0

    def ratios(self) -> dict[str, dict[str, float]]:
        """Fig. 3-style min/avg/max ratios of each component."""
        total = self.total or 1.0
        out: dict[str, dict[str, float]] = {}
        for name, arr in (("comp", self.comp), ("comm", self.comm),
                          ("idle", self.idle)):
            frac = arr / total
            out[name] = {
                "min": float(frac.min()),
                "avg": float(frac.mean()),
                "max": float(frac.max()),
            }
        return out


def _ghost_pairs(edges: np.ndarray, src_own: np.ndarray,
                 dst_own: np.ndarray) -> np.ndarray:
    """Distinct (rank, ghost gid) pairs over both edge directions.

    Pairs are deduplicated through a packed 1-D key (rank * n + gid); a
    2-D ``np.unique(axis=0)`` would sort void views and is an order of
    magnitude slower on the tens of millions of pairs the scaling sweeps
    produce.
    """
    crossing = src_own != dst_own
    if not crossing.any():
        return np.empty((0, 2), dtype=np.int64)
    n = int(edges.max()) + 1 if len(edges) else 1
    keys = np.concatenate(
        [
            src_own[crossing] * n + edges[crossing, 1],
            dst_own[crossing] * n + edges[crossing, 0],
        ]
    )
    uniq = sorted_unique(keys)
    return np.stack([uniq // n, uniq % n], axis=1)


def pagerank_like_costs(edges: np.ndarray, part: Partition) -> PerRankCosts:
    """Volumes of one PageRank/LabelProp iteration under ``part``.

    Work: each rank processes its owned in- and out-edges once.
    Communication: each (rank, ghost) pair moves one value; the owner sends
    it, the rank holding the ghost receives it.
    """
    edges = np.asarray(edges, dtype=np.int64)
    p = part.nparts
    src_own = part.owner_of(edges[:, 0])
    dst_own = part.owner_of(edges[:, 1])
    work = (np.bincount(src_own, minlength=p)
            + np.bincount(dst_own, minlength=p)).astype(np.int64)

    pairs = _ghost_pairs(edges, src_own, dst_own)
    if len(pairs):
        ghost_recv = np.bincount(pairs[:, 0], minlength=p).astype(np.int64)
        owners = part.owner_of(pairs[:, 1])
        ghost_send = np.bincount(owners, minlength=p).astype(np.int64)
        peer_keys = sorted_unique(pairs[:, 0] * np.int64(p) + owners)
        peer_count = np.bincount(peer_keys // p, minlength=p).astype(np.int64)
    else:
        ghost_recv = np.zeros(p, dtype=np.int64)
        ghost_send = np.zeros(p, dtype=np.int64)
        peer_count = np.zeros(p, dtype=np.int64)
    return PerRankCosts(nparts=p, work_edges=work, ghost_recv=ghost_recv,
                        ghost_send=ghost_send, peer_count=peer_count, rounds=1)


def bfs_like_costs(edges: np.ndarray, part: Partition,
                   n_levels: int) -> PerRankCosts:
    """Volumes of one full BFS-like traversal under ``part``.

    Work and traffic match :func:`pagerank_like_costs` (each edge relaxed
    once, each ghost discovered once) but the traversal pays ``n_levels``
    synchronization rounds, which is what limits BFS-like strong scaling in
    the paper ("a greater number of global synchronizations and a lower
    computation to communication ratio").
    """
    if n_levels < 1:
        raise ValueError("n_levels must be >= 1")
    base = pagerank_like_costs(edges, part)
    return PerRankCosts(
        nparts=base.nparts,
        work_edges=base.work_edges,
        ghost_recv=base.ghost_recv,
        ghost_send=base.ghost_send,
        peer_count=base.peer_count,
        rounds=n_levels,
    )


def predict_iteration(
    costs: PerRankCosts,
    machine: MachineModel,
    bytes_per_value: int = 8,
) -> PhasePrediction:
    """Turn per-rank volumes into modeled comp/comm/idle components."""
    comp = np.array(
        [
            machine.compute_time(float(w), float(gr))
            for w, gr in zip(costs.work_edges, costs.ghost_recv)
        ]
    )
    comm = np.array(
        [
            machine.comm_time(float(pc * costs.rounds),
                              float((gs + gr) * bytes_per_value))
            for pc, gs, gr in zip(costs.peer_count, costs.ghost_send,
                                  costs.ghost_recv)
        ]
    )
    idle = comp.max() - comp if len(comp) else comp
    return PhasePrediction(comp=comp, comm=comm, idle=idle)
