"""Measured execution-time breakdowns from runtime traces (Fig. 3).

The paper decomposes each task's time into computation, communication, and
idle (waiting at synchronization points), reporting min/avg/max ratios
across tasks.  The SPMD runtime records exactly those components per
collective (see :mod:`repro.runtime.trace`); this module aggregates them,
optionally restricted to one traced region (one analytic).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..runtime.trace import CommTrace

__all__ = ["Breakdown", "measured_breakdown"]


@dataclass(frozen=True)
class Breakdown:
    """Per-rank measured comp/comm/idle seconds plus ratio summaries."""

    comp: np.ndarray
    comm: np.ndarray
    idle: np.ndarray

    @property
    def nranks(self) -> int:
        return len(self.comp)

    @property
    def total(self) -> float:
        """Wall-clock estimate: the slowest rank's comp+comm+idle."""
        sums = self.comp + self.comm + self.idle
        return float(sums.max()) if len(sums) else 0.0

    def ratios(self) -> dict[str, dict[str, float]]:
        """Fig. 3-style min/avg/max of each component over total time."""
        total = self.total or 1.0
        out: dict[str, dict[str, float]] = {}
        for name, arr in (("comp", self.comp), ("comm", self.comm),
                          ("idle", self.idle)):
            frac = arr / total
            out[name] = {
                "min": float(frac.min()) if len(frac) else 0.0,
                "avg": float(frac.mean()) if len(frac) else 0.0,
                "max": float(frac.max()) if len(frac) else 0.0,
            }
        return out


def measured_breakdown(traces: list[CommTrace],
                       region: str | None = None) -> Breakdown:
    """Aggregate per-rank traces into a :class:`Breakdown`.

    Parameters
    ----------
    traces:
        Per-rank traces from :func:`repro.runtime.spmd_traces`.
    region:
        Restrict to events tagged with this region (an analytic name such
        as ``"pagerank"``).  Compute time between collectives cannot be
        attributed to a region after the fact, so with a region filter the
        compute component is estimated from event gaps inside the region.
    """
    comp = np.zeros(len(traces))
    comm = np.zeros(len(traces))
    idle = np.zeros(len(traces))
    for i, t in enumerate(traces):
        events = t.events if region is None else t.events_in(region)
        comm[i] = sum(e.xfer_s for e in events)
        idle[i] = sum(e.wait_s for e in events)
        if region is None:
            comp[i] = t.compute_s
        else:
            # Gaps between consecutive in-region collectives approximate
            # the region's compute time.
            for a, b in zip(events, events[1:]):
                gap = b.t_enter - (a.t_enter + a.wait_s + a.xfer_s)
                comp[i] += max(0.0, gap)
    return Breakdown(comp=comp, comm=comm, idle=idle)
