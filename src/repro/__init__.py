"""repro — distributed-memory complex graph analysis.

A from-scratch Python reproduction of *"A Case Study of Complex Graph
Analysis in Distributed Memory: Implementation and Optimization"*
(Slota, Rajamanickam & Madduri, IPDPS 2016): an SPMD runtime with
MPI-style collectives, a compact distributed CSR graph with ghost
relabeling, three 1-D partitioning strategies, parallel binary edge-list
ingestion, and the paper's six analytics (PageRank, Label Propagation,
WCC, SCC, Harmonic Centrality, approximate k-core), plus the performance
model and baseline engines used to regenerate every table and figure of
the paper's evaluation.

Quickstart
----------
>>> import numpy as np
>>> from repro import run_spmd
>>> from repro.generators import webcrawl_edges
>>> from repro.partition import VertexBlockPartition
>>> from repro.graph import build_dist_graph
>>> from repro.analytics import pagerank
>>>
>>> edges = webcrawl_edges(10_000, avg_degree=16, seed=1)
>>> def job(comm):
...     part = VertexBlockPartition(10_000, comm.size)
...     mine = np.array_split(edges, comm.size)[comm.rank]
...     g = build_dist_graph(comm, mine, part)
...     return pagerank(comm, g, max_iters=10).scores.sum()
>>> total = sum(run_spmd(4, job))  # ≈ 1.0
"""

from .runtime import run_spmd, spmd_traces

__version__ = "1.0.0"

__all__ = ["run_spmd", "spmd_traces", "__version__"]
