"""Scaled stand-ins for the paper's graph inventory (Table I).

The paper's real datasets are not redistributable offline, so each entry is
a deterministic synthetic graph whose *average degree*, *degree skew* and
*community structure* match the original's character at a configurable
scale.  ``scale=1.0`` gives laptop-sized defaults; benches shrink or grow
them uniformly.

===========  ============================  =====================================
Name         Paper original                 Stand-in
===========  ============================  =====================================
web-crawl    2012 WDC page graph, d̄=36     webcrawl generator, d̄=36
host         WDC host graph, d̄=22          webcrawl generator, d̄=22
pay          WDC pay-level-domain, d̄=16    webcrawl generator, d̄=16
twitter      Twitter crawl, d̄=38           R-MAT (skewed, no communities), d̄=38
livejournal  SNAP LiveJournal, d̄=14        webcrawl generator, d̄=14
google       SNAP web-Google, d̄=5.8        webcrawl generator, d̄=5.8
rmat         R-MAT matched to WC            rmat generator, d̄=36
rand-er      Erdős–Rényi matched to WC      erdos_renyi generator, d̄=36
===========  ============================  =====================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .erdos_renyi import erdos_renyi_edges
from .rmat import rmat_edges
from .webgraph import webcrawl_edges

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "dataset_names"]


@dataclass(frozen=True)
class DatasetSpec:
    """One Table-I row: a named graph recipe at unit scale."""

    name: str
    paper_n: float  # vertices in the paper's original (for reporting)
    paper_m: float
    avg_degree: float
    base_n: int  # stand-in vertex count at scale=1.0
    generator: Callable[[int, float, int], np.ndarray]

    def generate(self, scale: float = 1.0, seed: int = 1) -> np.ndarray:
        """Edge list of the stand-in at the requested scale."""
        n = max(64, int(round(self.base_n * scale)))
        return self.generator(n, self.avg_degree, seed)

    def n_for(self, scale: float = 1.0) -> int:
        return max(64, int(round(self.base_n * scale)))


def _web(n: int, d: float, seed: int) -> np.ndarray:
    return webcrawl_edges(n, avg_degree=d, seed=seed)


def _rmat(n: int, d: float, seed: int) -> np.ndarray:
    scale = max(6, int(np.ceil(np.log2(n))))
    return rmat_edges(scale, m=int(round(d * n)), seed=seed)


def _er(n: int, d: float, seed: int) -> np.ndarray:
    return erdos_renyi_edges(n, int(round(d * n)), seed=seed)


DATASETS: dict[str, DatasetSpec] = {
    s.name: s
    for s in [
        DatasetSpec("web-crawl", 3.56e9, 128.7e9, 36.0, 40_000, _web),
        DatasetSpec("host", 89e6, 2.0e9, 22.0, 20_000, _web),
        DatasetSpec("pay", 39e6, 623e6, 16.0, 12_000, _web),
        DatasetSpec("twitter", 53e6, 2.0e9, 38.0, 16_384, _rmat),
        DatasetSpec("livejournal", 4.8e6, 69e6, 14.0, 10_000, _web),
        DatasetSpec("google", 875e3, 5.1e6, 5.8, 6_000, _web),
        DatasetSpec("rmat", 3.56e9, 129e9, 36.0, 32_768, _rmat),
        DatasetSpec("rand-er", 3.56e9, 129e9, 36.0, 40_000, _er),
    ]
}


def dataset_names() -> list[str]:
    """Names of all Table-I stand-ins."""
    return list(DATASETS)


def load_dataset(name: str, scale: float = 1.0, seed: int = 1) -> np.ndarray:
    """Generate the named stand-in's edge list.

    Raises ``KeyError`` with the available names on a typo.
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}") from None
    return spec.generate(scale=scale, seed=seed)
