"""Erdős–Rényi random graphs ("Rand-ER" in the paper).

The paper pairs every R-MAT experiment with a uniform random graph of the
same size: same edge count, but no degree skew and no locality, isolating
the effect of skew on load balance.  We generate the ``G(n, m)``-with-
replacement variant (m independent uniform edges; duplicates and self-loops
possible) to mirror the R-MAT generator's conventions.
"""

from __future__ import annotations

import numpy as np

__all__ = ["erdos_renyi_edges"]


def erdos_renyi_edges(n: int, m: int, seed: int = 1) -> np.ndarray:
    """Generate ``m`` independent uniformly-random directed edges on ``n`` vertices.

    Returns an ``(m, 2)`` int64 array.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if m < 0:
        raise ValueError("m must be non-negative")
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=(m, 2), dtype=np.int64)
    return edges
