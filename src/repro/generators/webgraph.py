"""Synthetic hyperlink-graph stand-in for the 2012 Web Data Commons crawl.

The real Web Crawl (3.56 B vertices, 128.7 B edges, ~1 TB on disk) is not
available offline, so this generator produces a scaled-down directed graph
with the structural features the paper identifies as performance-relevant:

* **heavy-tailed in/out degree distributions** (Pareto weights; drives the
  load imbalance the paper sees with block partitioning);
* **host-level communities with consecutive vertex ids** (pages of a site
  link densely to each other and are crawled together, which is why natural
  vertex order has locality and why Label Propagation finds large
  communities — Table V / Fig. 5);
* **a giant weakly/strongly connected component plus many tiny components
  and isolated vertices** (the bow-tie structure of Meusel et al. that the
  WCC/SCC analytics expose);
* **zero-degree and dangling vertices** (pages never linked / never
  crawled), which exercise PageRank's dangling-mass handling.

The generator is a directed Chung–Lu model with planted communities:
every edge picks its source ∝ out-weight; with probability ``p_intra`` the
destination is drawn ∝ in-weight *within the source's community*, else
∝ in-weight globally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["WebCrawlSynth", "webcrawl", "webcrawl_edges"]


@dataclass(frozen=True)
class WebCrawlSynth:
    """A generated crawl: edge list plus ground-truth host communities."""

    edges: np.ndarray  # (m, 2) int64
    n: int
    community: np.ndarray  # (n,) community id per vertex
    community_sizes: np.ndarray  # size per community id

    @property
    def m(self) -> int:
        return len(self.edges)

    @property
    def n_communities(self) -> int:
        return len(self.community_sizes)


def _pareto_weights(rng: np.random.Generator, n: int, alpha: float) -> np.ndarray:
    """Heavy-tailed positive weights with tail exponent ``alpha``."""
    return (1.0 + rng.pareto(alpha, size=n))


def _community_sizes(rng: np.random.Generator, n: int, mean_size: float,
                     alpha: float) -> np.ndarray:
    """Power-law community sizes summing exactly to ``n``."""
    sizes = []
    remaining = n
    while remaining > 0:
        batch = np.maximum(
            1, (mean_size / 2.0 * (1.0 + rng.pareto(alpha, size=256))).astype(np.int64)
        )
        for s in batch:
            s = int(min(s, remaining))
            sizes.append(s)
            remaining -= s
            if remaining == 0:
                break
    return np.array(sizes, dtype=np.int64)


def webcrawl(
    n: int,
    avg_degree: float = 16.0,
    p_intra: float = 0.72,
    degree_alpha: float = 1.8,
    community_alpha: float = 1.6,
    mean_community_size: float = 40.0,
    zero_fraction: float = 0.04,
    popularity_alpha: float = 1.3,
    seed: int = 1,
) -> WebCrawlSynth:
    """Generate a synthetic web crawl of ``n`` pages.

    Parameters
    ----------
    n:
        Number of vertices (pages).
    avg_degree:
        Average out-degree; ``m = round(avg_degree * n)``.
    p_intra:
        Probability that a link stays inside the source page's host
        community (controls edge-cut of block partitionings and community
        strength for Label Propagation).
    degree_alpha:
        Pareto tail exponent of the in/out degree weights (smaller =
        heavier tail).
    community_alpha:
        Tail exponent of the community-size distribution.
    zero_fraction:
        Fraction of pages that receive zero link weight entirely
        (uncrawled/unlinked pages → isolated vertices).
    popularity_alpha:
        Tail exponent of the per-community popularity multiplier.  Real
        crawls have *hot contiguous id ranges* (the pages of a popular
        site are numbered together), which is exactly what makes block
        partitionings edge-imbalanced in the paper; lower values make the
        hot ranges hotter.
    seed:
        RNG seed; fully deterministic output.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not (0.0 <= p_intra <= 1.0):
        raise ValueError("p_intra must be in [0, 1]")
    rng = np.random.default_rng(seed)
    m = int(round(avg_degree * n))

    sizes = _community_sizes(rng, n, mean_community_size, community_alpha)
    n_comm = len(sizes)
    comm_start = np.zeros(n_comm + 1, dtype=np.int64)
    np.cumsum(sizes, out=comm_start[1:])
    community = np.repeat(np.arange(n_comm, dtype=np.int64), sizes)

    # Per-community popularity: whole hosts are hot or cold together,
    # creating the hot contiguous id ranges of a real crawl order.
    popularity = _pareto_weights(rng, n_comm, popularity_alpha)
    per_vertex_pop = np.repeat(popularity, sizes)
    w_out = _pareto_weights(rng, n, degree_alpha) * per_vertex_pop
    w_in = _pareto_weights(rng, n, degree_alpha) * per_vertex_pop
    if zero_fraction > 0:
        dead = rng.random(n) < zero_fraction
        w_out[dead] = 0.0
        w_in[dead] = 0.0
    if w_out.sum() == 0 or w_in.sum() == 0:
        raise ValueError("all vertices have zero weight; lower zero_fraction")

    # Source sampling proportional to out-weight.
    cum_out = np.cumsum(w_out)
    src = np.searchsorted(cum_out, rng.random(m) * cum_out[-1], side="right")
    src = np.minimum(src, n - 1).astype(np.int64)

    # Destination sampling: intra-community or global, both ∝ in-weight.
    cum_in = np.cumsum(w_in)
    total_in = cum_in[-1]
    dst = np.empty(m, dtype=np.int64)
    intra = rng.random(m) < p_intra

    # Intra-community: draw inside [cum_in[lo-1], cum_in[hi-1]] of the
    # source's community block (consecutive ids make this a range draw).
    c = community[src[intra]]
    lo = comm_start[c]
    hi = comm_start[c + 1]
    base = np.where(lo > 0, cum_in[np.maximum(lo - 1, 0)], 0.0)
    base[lo == 0] = 0.0
    width = cum_in[hi - 1] - base
    ok = width > 0
    target = base + rng.random(int(intra.sum())) * width
    d_intra = np.searchsorted(cum_in, target, side="left")
    # Communities whose whole block is zero-weight fall back to global draws.
    g_fallback = ~ok
    if g_fallback.any():
        d_intra[g_fallback] = np.searchsorted(
            cum_in, rng.random(int(g_fallback.sum())) * total_in, side="left"
        )
    dst[intra] = np.minimum(d_intra, n - 1)

    n_glob = int((~intra).sum())
    d_glob = np.searchsorted(cum_in, rng.random(n_glob) * total_in, side="left")
    dst[~intra] = np.minimum(d_glob, n - 1)

    edges = np.stack([src, dst], axis=1)
    return WebCrawlSynth(edges=edges, n=n, community=community,
                         community_sizes=sizes)


def webcrawl_edges(n: int, avg_degree: float = 16.0, seed: int = 1,
                   **kwargs) -> np.ndarray:
    """Convenience wrapper returning only the edge list."""
    return webcrawl(n, avg_degree=avg_degree, seed=seed, **kwargs).edges
