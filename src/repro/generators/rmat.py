"""R-MAT recursive-matrix graph generator (Chakrabarti et al., SDM 2004).

The paper uses R-MAT graphs matched to the Web Crawl's size for its
synthetic comparisons and weak-scaling studies.  This is the standard
Graph500-style generator: each edge picks one quadrant of the adjacency
matrix per recursion level with probabilities ``(a, b, c, d)``, producing
heavy-tailed degree distributions and the work imbalance the paper
attributes to "high-degree vertices" in its R-MAT results.

Fully vectorized: one ``(m, scale)`` random draw per endpoint bit.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rmat_edges"]


def rmat_edges(
    scale: int,
    edge_factor: float = 16.0,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 1,
    m: int | None = None,
) -> np.ndarray:
    """Generate a directed R-MAT edge list.

    Parameters
    ----------
    scale:
        ``n = 2**scale`` vertices.
    edge_factor:
        Average out-degree; ``m = round(edge_factor * n)`` unless ``m`` is
        given explicitly.
    a, b, c:
        Quadrant probabilities; ``d = 1 - a - b - c``.  Defaults are the
        Graph500 parameters.
    seed:
        RNG seed; identical parameters reproduce identical graphs.

    Returns
    -------
    ``(m, 2)`` int64 edge array (duplicates and self-loops possible, as in
    the reference generator; the paper does "not preprocess or prune the
    graphs in any manner").
    """
    if scale < 0 or scale > 62:
        raise ValueError("scale must be in [0, 62]")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0 or max(a, b, c, d) > 1:
        raise ValueError("quadrant probabilities must be in [0, 1] and sum to 1")
    n = 1 << scale
    if m is None:
        m = int(round(edge_factor * n))
    if m < 0:
        raise ValueError("m must be non-negative")
    rng = np.random.default_rng(seed)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    # Quadrant thresholds over one uniform draw per level:
    #   [0, a)       -> (0, 0)    [a, a+b)     -> (0, 1)
    #   [a+b, a+b+c) -> (1, 0)    [a+b+c, 1)   -> (1, 1)
    t1, t2, t3 = a, a + b, a + b + c
    for _level in range(scale):
        r = rng.random(m)
        src_bit = (r >= t2).astype(np.int64)
        dst_bit = ((r >= t1) & (r < t2) | (r >= t3)).astype(np.int64)
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
    return np.stack([src, dst], axis=1)
