"""Graph generators: R-MAT, Erdős–Rényi, and the web-crawl stand-in.

All generators are deterministic in their seed and return ``(m, 2)`` int64
edge arrays compatible with the binary edge-list format and the distributed
builder.  :mod:`~repro.generators.datasets` maps the paper's Table I rows
to scaled synthetic equivalents.
"""

from .datasets import DATASETS, DatasetSpec, dataset_names, load_dataset
from .erdos_renyi import erdos_renyi_edges
from .rmat import rmat_edges
from .webgraph import WebCrawlSynth, webcrawl, webcrawl_edges

__all__ = [
    "rmat_edges",
    "erdos_renyi_edges",
    "webcrawl",
    "webcrawl_edges",
    "WebCrawlSynth",
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "load_dataset",
]
