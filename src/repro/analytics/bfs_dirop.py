"""Direction-optimizing distributed BFS (Beamer-style; paper §III-D2).

The paper deliberately "omit[s] BFS-specific optimizations in our current
work" and cites the Graph500 line of research; this module supplies the
most important of those optimizations as the natural extension: switching
from *top-down* frontier expansion to *bottom-up* parent search when the
frontier covers a large fraction of the graph.

Top-down (Algorithm 2): every frontier vertex scans its out-edges; cost
∝ edges out of the frontier.
Bottom-up: every unvisited vertex scans its in-edges for any frontier
member and claims a level if one is found; cost ∝ edges into the
unvisited set, which is far smaller near the traversal's peak levels.

The distributed twist: bottom-up needs each rank to know which of its
*ghosts* are in the current frontier, so each level in bottom-up mode
refreshes a frontier flag array with a retained-queue halo exchange instead
of shipping discovered vertices.  Results are identical to
:func:`~repro.analytics.bfs.distributed_bfs` (asserted by tests).
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import segment_max, sorted_unique
from ..graph.distgraph import DistGraph, GridGraph
from ..runtime import SUM, Communicator
from .bfs import _gather_ranges
from .common import NOT_VISITED, QUEUED
from .exchange import HaloExchange

__all__ = ["distributed_bfs_dirop"]


def distributed_bfs_dirop(
    comm: Communicator,
    g: DistGraph | GridGraph,
    root_global: int,
    alpha: float = 15.0,
    beta: float = 20.0,
    halo: HaloExchange | None = None,
) -> np.ndarray:
    """Direction-optimizing BFS over out-edges from one root.

    Parameters
    ----------
    alpha:
        Switch to bottom-up once (frontier out-edges) × alpha exceeds the
        unvisited vertices' edge mass (Beamer's heuristic, simplified to
        global counts).
    beta:
        Switch back to top-down once the frontier shrinks below
        ``n / beta``.

    Returns
    -------
    Per-local-vertex levels, identical to the top-down kernel's output.
    """
    if isinstance(g, GridGraph):
        # 2-D checkerboard block: same heuristic, row/column-subgroup
        # frontier exchanges instead of halo/alltoallv (lazy import; the
        # grid kernels live beside the other frontier-idiom ports).
        from .frontier2d import grid_bfs_dirop

        return grid_bfs_dirop(comm, g, root_global, alpha=alpha, beta=beta)
    if not (0 <= root_global < g.n_global):
        raise ValueError("root out of range")
    if halo is None:
        halo = HaloExchange(comm, g)
    n_loc, n_tot = g.n_loc, g.n_total
    n_global = g.n_global

    status = np.full(n_tot, NOT_VISITED, dtype=np.int64)
    in_frontier = np.zeros(n_tot, dtype=bool)

    if g.partition.owner_of(np.array([root_global]))[0] == comm.rank:
        lid = int(g.partition.to_local(comm.rank, np.array([root_global]))[0])
        frontier = np.array([lid], dtype=np.int64)
        status[lid] = QUEUED
    else:
        frontier = np.empty(0, dtype=np.int64)

    out_deg = g.out_degrees()
    level = 0
    bottom_up = False
    global_front = comm.allreduce(len(frontier), SUM)

    while global_front > 0:
        status[frontier] = level

        # --- heuristic: pick the direction for the *next* expansion. ---
        front_edges = comm.allreduce(int(out_deg[frontier].sum()), SUM)
        unvisited = comm.allreduce(
            int(np.count_nonzero(status[:n_loc] == NOT_VISITED)), SUM)
        if not bottom_up and front_edges * alpha > max(unvisited, 1):
            bottom_up = True
        elif bottom_up and global_front < n_global / beta:
            bottom_up = False

        if bottom_up:
            # Publish frontier membership to ghosts, then let every
            # unvisited vertex search its in-edges for a frontier parent.
            in_frontier[:] = False
            in_frontier[frontier] = True
            halo.exchange(in_frontier)
            candidates = status[:n_loc] == NOT_VISITED
            if g.m_in:
                hit = segment_max(
                    g.in_indexes, in_frontier[g.in_edges].astype(np.int8),
                    empty_value=np.int8(0)).astype(bool)
            else:
                hit = np.zeros(n_loc, dtype=bool)
            next_frontier = np.flatnonzero(candidates & hit).astype(np.int64)
            status[next_frontier] = QUEUED
            frontier = next_frontier
        else:
            nbrs = _gather_ranges(g.out_edges, g.out_indexes[frontier],
                                  g.out_indexes[frontier + 1])
            discovered = sorted_unique(nbrs[status[nbrs] == NOT_VISITED])
            status[discovered] = QUEUED
            local_next = discovered[discovered < n_loc]
            ghosts = discovered[discovered >= n_loc]
            owners = g.ghost_tasks[ghosts - n_loc]
            order = np.argsort(owners, kind="stable")
            counts = np.bincount(owners, minlength=comm.size)
            recv_gids, _ = comm.alltoallv_flat(g.unmap[ghosts[order]], counts)
            if len(recv_gids):
                recv_lids = sorted_unique(g.map.get(recv_gids))
                recv_new = recv_lids[status[recv_lids] == NOT_VISITED]
                status[recv_new] = QUEUED
                frontier = np.concatenate([local_next, recv_new])
            else:
                frontier = local_next

        level += 1
        global_front = comm.allreduce(len(frontier), SUM)

    return status[:n_loc]
