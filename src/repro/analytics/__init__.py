"""The six graph analytics of the paper, plus the shared kernels.

PageRank-like (value propagation with retained-queue halo exchanges):

* :func:`pagerank` — power-iteration PageRank;
* :func:`label_propagation` — community detection;
* the coloring phase of :func:`wcc`.

BFS-like (frontier expansion, Algorithm 2):

* :func:`distributed_bfs` — the shared level-synchronous kernel;
* :func:`largest_scc` / :func:`scc` — Forward–Backward SCC with trimming;
* :func:`harmonic_centrality` — reverse-BFS reciprocal-distance sums;
* :func:`approx_kcore` — geometric coreness-bound sweep;
* phase 1 of :func:`wcc` (Multistep).

All functions are SPMD: call them from within :func:`repro.runtime.run_spmd`
with this rank's :class:`~repro.graph.DistGraph`.
"""

from .batched import (
    BatchedPPRResult,
    batched_closeness,
    batched_personalized_pagerank,
    multi_source_bfs,
)
from .betweenness import BetweennessResult, betweenness_centrality
from .bfs import distributed_bfs
from .bfs_dirop import distributed_bfs_dirop
from .diameter import DiameterEstimate, estimate_diameter
from .closeness import ClosenessResult, closeness_centrality
from .common import NOT_VISITED, QUEUED, combined_adjacency, global_max_degree_vertex
from .delta_stepping import DeltaSteppingResult, delta_stepping
from .exchange import HaloExchange
from .frontier2d import (
    Frontier2D,
    default_grid_weights,
    grid_bfs_dirop,
    grid_delta_stepping,
    grid_wcc,
)
from .hits import HITSResult, hits
from .harmonic import (
    HarmonicResult,
    harmonic_centrality,
    harmonic_centrality_many,
    top_degree_vertices,
)
from .kcore import KCoreResult, approx_kcore
from .kcore_exact import ExactKCoreResult, exact_kcore
from .label_propagation import LabelPropagationResult, label_propagation
from .pagerank import PageRankResult, pagerank
from .scc import SCCResult, largest_scc, scc
from .sssp import SSSPResult, default_weights, hash_edge_weights, sssp
from .triangles import TriangleResult, triangle_count
from .validation import (
    validate_bfs_levels,
    validate_components,
    validate_distances,
    validate_pagerank,
)
from .wcc import WCCResult, wcc

__all__ = [
    "HaloExchange",
    "distributed_bfs",
    "multi_source_bfs",
    "batched_personalized_pagerank",
    "BatchedPPRResult",
    "batched_closeness",
    "pagerank",
    "PageRankResult",
    "label_propagation",
    "LabelPropagationResult",
    "wcc",
    "WCCResult",
    "largest_scc",
    "scc",
    "SCCResult",
    "harmonic_centrality",
    "harmonic_centrality_many",
    "top_degree_vertices",
    "HarmonicResult",
    "approx_kcore",
    "KCoreResult",
    "exact_kcore",
    "ExactKCoreResult",
    "distributed_bfs_dirop",
    "Frontier2D",
    "grid_bfs_dirop",
    "grid_wcc",
    "grid_delta_stepping",
    "default_grid_weights",
    "sssp",
    "SSSPResult",
    "default_weights",
    "hash_edge_weights",
    "triangle_count",
    "TriangleResult",
    "estimate_diameter",
    "DiameterEstimate",
    "delta_stepping",
    "DeltaSteppingResult",
    "validate_bfs_levels",
    "validate_components",
    "validate_pagerank",
    "validate_distances",
    "betweenness_centrality",
    "BetweennessResult",
    "hits",
    "HITSResult",
    "closeness_centrality",
    "ClosenessResult",
    "NOT_VISITED",
    "QUEUED",
    "combined_adjacency",
    "global_max_degree_vertex",
]
