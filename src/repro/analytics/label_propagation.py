"""Distributed Label Propagation community detection (paper §III-D1, Alg. 1).

Every vertex starts with its own global id as its label; each iteration a
vertex adopts the label occurring most frequently among its neighbors over
*both* in- and out-edges (the paper ignores directivity for propagation),
with ties broken randomly.  The paper runs a fixed number of iterations
(10 and 30 for the Table V community analyses).

Implementation notes
--------------------
* The paper's inner loop builds a per-vertex label→count hash map; the
  vectorized equivalent sorts the (vertex, neighbor-label) pairs once per
  iteration and reduces run lengths — same O(Σdeg) work, no Python loop.
* Updates are synchronous (all vertices see the previous iteration's
  labels).  The paper's OpenMP loop is effectively asynchronous within a
  rank; synchronous updates make runs deterministic and rank-count
  invariant, which the tests rely on.
* Ghost labels are refreshed with the retained-queue halo exchange — the
  same optimization the paper applies (send labels only, never ids).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.distgraph import DistGraph
from ..runtime import SUM, Communicator
from .common import combined_adjacency
from .exchange import HaloExchange

__all__ = ["LabelPropagationResult", "label_propagation"]


@dataclass(frozen=True)
class LabelPropagationResult:
    """Per-rank Label Propagation output."""

    labels: np.ndarray  # final label of each locally-owned vertex
    n_iters: int
    last_changed: int  # number of vertices that changed in the last iteration


def _tie_hash(gids: np.ndarray, labels: np.ndarray, it: int, seed: int) -> np.ndarray:
    """Deterministic pseudo-random tie-break key per (vertex, label, iter).

    Keyed by *global* vertex id so the outcome is independent of which rank
    owns the vertex — Label Propagation results are identical for any rank
    count and partitioning.
    """
    with np.errstate(over="ignore"):
        z = (gids.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)
             ^ labels.astype(np.uint64) * np.uint64(0xBF58476D1CE4E5B9)
             ^ np.uint64((seed * 1_000_003 + it) & 0xFFFFFFFFFFFFFFFF))
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0x94D049BB133111EB)
        z ^= z >> np.uint64(31)
    return z


def _max_count_labels(
    rows: np.ndarray,
    labels: np.ndarray,
    n_rows: int,
    row_gids: np.ndarray,
    it: int,
    seed: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Most frequent label per row; hashed random tie-break.

    Returns ``(chosen, has_any)`` where ``chosen[v]`` is valid only when
    ``has_any[v]`` (vertices with no neighbors keep their old label).
    """
    chosen = np.zeros(n_rows, dtype=np.int64)
    has_any = np.zeros(n_rows, dtype=bool)
    if len(rows) == 0:
        return chosen, has_any
    order = np.lexsort((labels, rows))
    r_sorted = rows[order]
    l_sorted = labels[order]
    # Run boundaries of identical (row, label) pairs.
    new_run = np.empty(len(order), dtype=bool)
    new_run[0] = True
    new_run[1:] = (r_sorted[1:] != r_sorted[:-1]) | (l_sorted[1:] != l_sorted[:-1])
    run_starts = np.flatnonzero(new_run)
    run_rows = r_sorted[run_starts]
    run_labels = l_sorted[run_starts]
    run_counts = np.diff(np.append(run_starts, len(order)))
    # Pick, per row, the run with the highest count; ties go to the run
    # with the highest hashed key (uniform among tied labels).
    tiebreak = _tie_hash(row_gids[run_rows], run_labels, it, seed)
    sel = np.lexsort((tiebreak, run_counts, run_rows))
    row_sorted = run_rows[sel]
    last_of_row = np.empty(len(sel), dtype=bool)
    last_of_row[-1] = True
    last_of_row[:-1] = row_sorted[1:] != row_sorted[:-1]
    winners = sel[last_of_row]
    chosen[run_rows[winners]] = run_labels[winners]
    has_any[run_rows[winners]] = True
    return chosen, has_any


def label_propagation(
    comm: Communicator,
    g: DistGraph,
    n_iters: int = 10,
    seed: int = 0,
    halo: HaloExchange | None = None,
    mode: str = "sync",
    n_sweeps: int = 4,
) -> LabelPropagationResult:
    """Run ``n_iters`` Label Propagation iterations.

    Parameters
    ----------
    n_iters:
        Fixed iteration count (the paper's stopping criterion).
    seed:
        Seed of the tie-breaking RNG.  The same (graph, seed) pair yields
        identical communities for any rank count.
    mode:
        ``"sync"`` (default): every vertex sees the previous iteration's
        labels — deterministic and rank-count invariant, used by the tests
        and Table V.
        ``"async"``: each iteration applies ``n_sweeps`` chunked in-place
        sub-sweeps before the halo refresh, approximating the paper's
        OpenMP loop where threads read labels updated within the same
        iteration.  Converges faster and avoids the bipartite oscillation
        of synchronous updates, at the cost of rank-count-dependent output
        (see ``bench_ablations``).
    n_sweeps:
        Sub-sweeps per iteration in async mode.

    Returns
    -------
    LabelPropagationResult
        ``labels[i]`` is the community label (a global vertex id) of local
        vertex ``i``.
    """
    if n_iters < 0:
        raise ValueError("n_iters must be non-negative")
    if mode not in ("sync", "async"):
        raise ValueError(f"mode must be 'sync' or 'async', got {mode!r}")
    if n_sweeps < 1:
        raise ValueError("n_sweeps must be >= 1")
    with comm.region("label_propagation"):
        if halo is None:
            halo = HaloExchange(comm, g)
        n_loc, n_tot = g.n_loc, g.n_total

        rows, nbrs = combined_adjacency(g, "both")
        labels = g.unmap.astype(np.int64).copy()  # init: own global id

        row_gids = g.unmap[:n_loc]
        changed = 0
        for it in range(n_iters):
            if mode == "sync":
                chosen, has_any = _max_count_labels(
                    rows, labels[nbrs], n_loc, row_gids, it, seed)
                new_local = np.where(has_any, chosen, labels[:n_loc])
            else:
                # Async: split local vertices into chunks; later chunks see
                # labels already updated by earlier chunks this iteration.
                before = labels[:n_loc].copy()
                bounds = np.linspace(0, n_loc, n_sweeps + 1).astype(np.int64)
                for s in range(n_sweeps):
                    lo, hi = bounds[s], bounds[s + 1]
                    if lo == hi:
                        continue
                    in_chunk = (rows >= lo) & (rows < hi)
                    chosen, has_any = _max_count_labels(
                        rows[in_chunk] - lo, labels[nbrs[in_chunk]],
                        int(hi - lo), row_gids[lo:hi], it * n_sweeps + s,
                        seed)
                    labels[lo:hi] = np.where(has_any, chosen, labels[lo:hi])
                new_local = labels[:n_loc].copy()
                labels[:n_loc] = before  # restore for the change count
            changed = comm.allreduce(
                int(np.count_nonzero(new_local != labels[:n_loc])), SUM)
            labels[:n_loc] = new_local
            # tol=0 delta: only changed labels travel (bitwise-identical to
            # a dense refresh), which goes sparse as communities stabilize.
            halo.exchange_delta(labels)
            if changed == 0:
                return LabelPropagationResult(
                    labels=labels[:n_loc].copy(), n_iters=it + 1, last_changed=0)

        return LabelPropagationResult(
            labels=labels[:n_loc].copy(), n_iters=n_iters, last_changed=changed)
