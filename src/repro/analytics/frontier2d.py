"""Communication-avoiding frontier kernels on the 2-D grid distribution.

The 1-D kernels exchange frontier state with *all* ``p`` ranks (ghost halo
exchanges and discovered-vertex ``alltoallv``).  On a
:class:`~repro.graph.distgraph.GridGraph` every frontier phase instead runs
two subgroup collectives of ``≈ √p`` participants each (Buluç & Madduri):

1. **column gather** — each rank packs its owned chunk of the frontier
   into a ``np.packbits`` bitmap (1 bit/vertex) and allgathers it over
   ``comm.cols()``; unpacking the per-member segments yields the full
   column-slice frontier every block in the column needs;
2. **local expansion** — top-down scans the td CSR rows of frontier
   sources, bottom-up scans the bu CSR rows of unvisited targets (same
   direction-switch heuristic as :func:`~repro.analytics.bfs_dirop.
   distributed_bfs_dirop`);
3. **row reduce** — candidate targets are packed into a row-slice bitmap
   and OR-combined with one ``allreduce(BOR)`` over ``comm.rows()``; every
   row member learns the complete next frontier of its row slice and
   slices out its own chunk.

The wire format is identical in both directions — a packed bitmap column
gather plus a packed bitmap row reduce per level — so the collective
schedule never depends on the (replicated) direction decision.  WCC and
delta-stepping SSSP reuse the same :class:`Frontier2D` plumbing with dense
label/distance payloads instead of bitmaps.

Results are bitwise-identical to the 1-D kernels (asserted by tests):
levels, component labels, and shortest distances do not depend on the
partitioning.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import expand_rows, segment_max, segment_min
from ..graph.distgraph import GridGraph
from ..runtime import BOR, MAXLOC, MIN, SUM, Communicator, ReduceOp
from .bfs import _gather_ranges
from .common import NOT_VISITED
from .delta_stepping import DeltaSteppingResult
from .sssp import hash_edge_weights
from .wcc import WCCResult

__all__ = ["Frontier2D", "grid_bfs_dirop", "grid_wcc",
           "grid_delta_stepping", "default_grid_weights"]

INF = np.inf


class Frontier2D:
    """Reusable row/column exchange plumbing for one :class:`GridGraph`.

    Holds the (cached) grid sub-communicators and the preallocated
    column-slice / row-slice buffers, so per-level work allocates nothing
    beyond the packed wire payloads.  Idle ranks of a fallback grid hold
    ``None`` sub-communicators and all methods degrade to empty no-ops —
    but such ranks must still participate in the *world* collectives of
    the kernels below, which they do because every kernel loop is driven
    by ``comm.allreduce`` results.
    """

    def __init__(self, comm: Communicator, g: GridGraph):
        part = g.partition
        self.comm = comm
        self.g = g
        self.row_comm = comm.rows(part.grid_rows, part.grid_cols)
        self.col_comm = comm.cols(part.grid_rows, part.grid_cols)
        self._col_mask = np.zeros(g.n_col, dtype=bool)
        self._empty_row = np.zeros(0, dtype=bool)

    # ------------------------------------------------------------------
    def gather_frontier(self, own_mask: np.ndarray) -> np.ndarray:
        """Column-slice frontier bitmap from every member's owned chunk.

        Each member contributes ``ceil(n_own/8)`` bytes (``np.packbits``);
        the concatenated segments unpack — in grid-row order, which *is*
        column-slice order — into the shared column-mask buffer.
        """
        if self.col_comm is None:
            return self._col_mask
        data, counts = self.col_comm.allgatherv(np.packbits(own_mask))
        out = self._col_mask
        off = 0
        byte_off = 0
        for size, nbytes in zip(self.g.col_counts, counts):
            size, nbytes = int(size), int(nbytes)
            seg = np.unpackbits(data[byte_off:byte_off + nbytes], count=size)
            out[off:off + size] = seg
            off += size
            byte_off += nbytes
        return out

    def reduce_candidates(self, cand: np.ndarray) -> np.ndarray:
        """OR-combine row-slice candidate bitmaps across the grid row.

        Packs to 1 bit/vertex, ``allreduce(BOR)`` over ``comm.rows()``,
        unpacks; every member sees the union for the whole row slice.
        """
        if self.row_comm is None:
            return self._empty_row
        merged = self.row_comm.allreduce(np.packbits(cand), BOR)
        return np.unpackbits(merged, count=self.g.n_row).astype(bool)

    # ------------------------------------------------------------------
    # dense payload variants (labels, distances)
    # ------------------------------------------------------------------
    def gather_values(self, own_values: np.ndarray) -> np.ndarray:
        """Column-slice array of a per-owned-vertex array (dense gather)."""
        if self.col_comm is None:
            return own_values[:0]
        data, _ = self.col_comm.allgatherv(own_values)
        return data

    def reduce_rows(self, row_values: np.ndarray, op: ReduceOp) -> np.ndarray:
        """Element-wise ``op`` over the grid row's row-slice arrays."""
        if self.row_comm is None:
            return row_values
        return self.row_comm.allreduce(row_values, op)


def grid_bfs_dirop(
    comm: Communicator,
    g: GridGraph,
    root_global: int,
    alpha: float = 15.0,
    beta: float = 20.0,
    f2: Frontier2D | None = None,
) -> np.ndarray:
    """Direction-optimizing BFS on the 2-D grid distribution.

    Same semantics and direction heuristic as
    :func:`~repro.analytics.bfs_dirop.distributed_bfs_dirop`; returns the
    per-*owned*-vertex level array (bitwise-equal to the 1-D result for
    the same partition chunks).
    """
    if not (0 <= root_global < g.n_global):
        raise ValueError("root out of range")
    if f2 is None:
        f2 = Frontier2D(comm, g)
    n_own, own_lo, row_off = g.n_own, g.own_lo, g.own_row_off

    status = np.full(n_own, NOT_VISITED, dtype=np.int64)
    own_mask = np.zeros(n_own, dtype=bool)
    visited_row = np.zeros(g.n_row, dtype=bool)
    cand = np.zeros(g.n_row, dtype=bool)
    if own_lo <= root_global < own_lo + n_own:
        own_mask[root_global - own_lo] = True
    if g.is_active and g.row_lo <= root_global < g.row_lo + g.n_row:
        visited_row[root_global - g.row_lo] = True

    deg_td = g.td_degrees()
    level = 0
    bottom_up = False
    global_front = comm.allreduce(int(own_mask.sum()), SUM)

    while global_front > 0:
        status[own_mask] = level

        # Column phase: packed-bitmap frontier gather (both directions).
        col_mask = f2.gather_frontier(own_mask)

        # Direction heuristic on replicated global counts, as in 1-D.
        front_edges = comm.allreduce(int(deg_td[col_mask].sum()), SUM)
        unvisited = comm.allreduce(
            int(np.count_nonzero(status == NOT_VISITED)), SUM)
        if not bottom_up and front_edges * alpha > max(unvisited, 1):
            bottom_up = True
        elif bottom_up and global_front < g.n_global / beta:
            bottom_up = False

        # Local expansion into row-slice candidates.
        cand[:] = False
        if bottom_up:
            if g.m_block:
                cand |= segment_max(
                    g.bu_indexes, col_mask[g.bu_edges].astype(np.int8),
                    empty_value=np.int8(0)).astype(bool)
        else:
            fr = np.flatnonzero(col_mask)
            nbrs = _gather_ranges(g.td_edges, g.td_indexes[fr],
                                  g.td_indexes[fr + 1])
            cand[nbrs] = True
        cand &= ~visited_row

        # Row phase: packed-bitmap OR-reduce; every member sees the full
        # next frontier of its row slice and keeps its own chunk.
        row_all = f2.reduce_candidates(cand)
        visited_row |= row_all
        own_mask = row_all[row_off:row_off + n_own].copy()

        level += 1
        global_front = comm.allreduce(int(own_mask.sum()), SUM)

    return status


def grid_wcc(
    comm: Communicator,
    g: GridGraph,
    max_color_iters: int = 10_000,
) -> WCCResult:
    """Weakly connected components on the grid (Multistep structure).

    Needs a graph built with ``symmetrize=True`` so in-neighbor scans see
    the undirected adjacency.  Labels are the canonical per-component
    minimum global id, bitwise-equal to the 1-D :func:`~repro.analytics.
    wcc.wcc` labels; the BFS phase captures the same giant component
    (``n_color_iters`` may differ — the coloring sweep here is a plain
    Bellman-style fixpoint).
    """
    if not g.symmetrized:
        raise ValueError(
            "grid_wcc needs a GridGraph built with symmetrize=True")
    with comm.region("wcc2d"):
        f2 = Frontier2D(comm, g)
        n_own, own_lo, row_off = g.n_own, g.own_lo, g.own_row_off

        # Total degree of owned vertices: the symmetrized bu in-degree of
        # v, summed across the grid row, is exactly in(v) + out(v).
        deg_row = f2.reduce_rows(g.bu_degrees().astype(np.int64), SUM)
        deg_own = deg_row[row_off:row_off + n_own]
        if n_own:
            i = int(np.argmax(deg_own))
            local_best = (int(deg_own[i]), int(own_lo + i))
        else:
            local_best = (-1, g.n_global)
        pivot_deg, pivot = comm.allreduce(local_best, MAXLOC)

        labels = np.arange(own_lo, own_lo + n_own, dtype=np.int64)
        giant_label = -1
        if pivot_deg > 0:
            lev = grid_bfs_dirop(comm, g, int(pivot), f2=f2)
            visited = lev >= 0
            local_min = int(labels[visited].min()) if visited.any() \
                else g.n_global
            giant_label = int(comm.allreduce(local_min, MIN))
            labels[visited] = giant_label

        # Coloring: min-label fixpoint (column gather + row MIN-reduce).
        n_iters = 0
        while n_iters < max_color_iters:
            labels_col = f2.gather_values(labels)
            if g.m_block:
                cand = segment_min(g.bu_indexes, labels_col[g.bu_edges],
                                   empty_value=np.int64(g.n_global))
            else:
                cand = np.full(g.n_row, g.n_global, dtype=np.int64)
            all_row = f2.reduce_rows(cand, MIN)
            new_labels = np.minimum(labels, all_row[row_off:row_off + n_own])
            changed = comm.allreduce(
                int(np.count_nonzero(new_labels != labels)), SUM)
            if changed == 0:
                break
            labels = new_labels
            n_iters += 1

        return WCCResult(labels=labels, n_color_iters=n_iters,
                         giant_label=giant_label)


def default_grid_weights(g: GridGraph) -> np.ndarray:
    """Deterministic hash weights per bu-CSR block edge.

    Same :func:`~repro.analytics.sssp.hash_edge_weights` hash of global
    endpoint ids as the 1-D default, so the weight of every edge is
    identical across 1-D and 2-D runs.
    """
    dst_g = g.row_lo + expand_rows(g.bu_indexes)
    src_g = g.col_unmap[g.bu_edges]
    return hash_edge_weights(src_g, dst_g)


def grid_delta_stepping(
    comm: Communicator,
    g: GridGraph,
    root_global: int,
    delta: float | None = None,
    weights: np.ndarray | None = None,
    max_rounds: int = 100_000,
) -> DeltaSteppingResult:
    """Delta-stepping SSSP on the grid distribution.

    Same bucket schedule as :func:`~repro.analytics.delta_stepping.
    delta_stepping`; each relaxation round gathers the column slice's
    current distances (dense float64) and MIN-reduces tentative target
    distances along the row.  Final distances are bitwise-equal to the
    1-D kernels for the same weights.
    """
    if not (0 <= root_global < g.n_global):
        raise ValueError("root out of range")
    with comm.region("delta_stepping2d"):
        f2 = Frontier2D(comm, g)
        n_own, own_lo, row_off = g.n_own, g.own_lo, g.own_row_off

        if weights is None:
            weights = (g.bu_values if g.bu_values is not None
                       else default_grid_weights(g))
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != g.bu_edges.shape:
            raise ValueError("weights must align with g.bu_edges")
        if len(weights) and weights.min() < 0:
            raise ValueError("weights must be non-negative")
        if delta is None:
            total = comm.allreduce(float(weights.sum()), SUM)
            count = comm.allreduce(len(weights), SUM)
            delta = (total / count) if count else 1.0
        if delta <= 0:
            raise ValueError("delta must be positive")

        dist = np.full(n_own, INF, dtype=np.float64)
        if own_lo <= root_global < own_lo + n_own:
            dist[root_global - own_lo] = 0.0

        rows_bu = expand_rows(g.bu_indexes)
        light = weights < delta
        new_row = np.full(g.n_row, INF, dtype=np.float64)
        settled_below = 0.0
        n_phases = 0
        n_rounds = 0

        def relax(edge_mask: np.ndarray, bucket_lo: float,
                  bucket_hi: float) -> int:
            """One relaxation round over the masked block edges; returns
            the global number of improved owned vertices."""
            dist_col = f2.gather_values(dist)
            new_row[:] = INF
            if g.m_block:
                src_active = (dist_col >= bucket_lo) & (dist_col < bucket_hi)
                use = edge_mask & src_active[g.bu_edges]
                cand = np.where(use, dist_col[g.bu_edges] + weights, INF)
                np.minimum.at(new_row, rows_bu, cand)
            all_row = f2.reduce_rows(new_row, MIN)
            new_own = np.minimum(dist, all_row[row_off:row_off + n_own])
            improved = comm.allreduce(
                int(np.count_nonzero(new_own < dist)), SUM)
            dist[:] = new_own
            return improved

        while n_rounds < max_rounds:
            finite = np.isfinite(dist) & (dist >= settled_below)
            local_min = float(dist[finite].min()) if finite.any() else INF
            lo = comm.allreduce(local_min, MIN)
            if not np.isfinite(lo):
                break
            bucket_lo = np.floor(lo / delta) * delta
            bucket_hi = bucket_lo + delta
            n_phases += 1

            while n_rounds < max_rounds:
                n_rounds += 1
                if relax(light, bucket_lo, bucket_hi) == 0:
                    break
            n_rounds += 1
            relax(~light, bucket_lo, bucket_hi)
            settled_below = bucket_hi
        else:
            raise RuntimeError("grid_delta_stepping: round budget exhausted")

        reached = comm.allreduce(
            int(np.count_nonzero(np.isfinite(dist))), SUM)
        return DeltaSteppingResult(distances=dist, n_phases=n_phases,
                                   n_relax_rounds=n_rounds, reached=reached)
