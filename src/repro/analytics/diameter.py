"""Diameter estimation by iterated double sweeps (§VII extension).

The double-sweep heuristic: BFS from a start vertex, restart from the
farthest vertex found, repeat; the largest eccentricity observed is a lower
bound on the (undirected) diameter that is exact on trees and typically
tight on web-like graphs.  One more BFS-like member for the collection,
built entirely on the shared kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.distgraph import DistGraph
from ..runtime import MAXLOC, Communicator
from .bfs import distributed_bfs
from .common import global_max_degree_vertex

__all__ = ["DiameterEstimate", "estimate_diameter"]


@dataclass(frozen=True)
class DiameterEstimate:
    """Result of the double-sweep heuristic."""

    lower_bound: int  # best eccentricity observed (≤ true diameter)
    sweeps: int
    endpoints: tuple[int, int]  # global ids of the witnessing pair


def _farthest(comm: Communicator, g: DistGraph, levels: np.ndarray
              ) -> tuple[int, int]:
    """(distance, gid) of the farthest reached local vertex, globally."""
    if len(levels) and (levels >= 0).any():
        i = int(np.argmax(levels))
        cand = (int(levels[i]), int(g.unmap[i]))
    else:
        cand = (-1, g.n_global)
    dist, gid = comm.allreduce(cand, MAXLOC)
    return int(dist), int(gid)


def estimate_diameter(
    comm: Communicator,
    g: DistGraph,
    sweeps: int = 4,
    start: int | None = None,
) -> DiameterEstimate:
    """Lower-bound the undirected diameter of the giant component.

    Parameters
    ----------
    sweeps:
        Number of BFS sweeps (each restarts from the previous sweep's
        farthest vertex).  The bound is non-decreasing in ``sweeps``.
    start:
        Starting global vertex id; defaults to the max-degree vertex
        (which sits near the graph's core, making the first sweep reach a
        periphery vertex).
    """
    if sweeps < 1:
        raise ValueError("sweeps must be >= 1")
    with comm.region("diameter"):
        if start is None:
            start, _ = global_max_degree_vertex(comm, g)
            if start < 0:
                return DiameterEstimate(lower_bound=0, sweeps=0,
                                        endpoints=(-1, -1))
        elif not (0 <= start < g.n_global):
            raise ValueError("start vertex out of range")

        best = 0
        best_pair = (start, start)
        src = start
        done = 0
        for _ in range(sweeps):
            levels = distributed_bfs(comm, g, src, direction="both")
            dist, far = _farthest(comm, g, levels)
            done += 1
            if dist > best:
                best = dist
                best_pair = (src, far)
            if far == src or dist <= 0:
                break
            src = far
        return DiameterEstimate(lower_bound=best, sweeps=done,
                                endpoints=best_pair)
