"""Distributed delta-stepping SSSP (Meyer & Sanders; §VII extension).

A second shortest-path algorithm beside the Bellman–Ford relaxation of
:mod:`repro.analytics.sssp`, trading its simplicity for the classic
bucketed work schedule: vertices are grouped into distance buckets of
width Δ; the globally-lightest non-empty bucket is settled by repeated
*light*-edge (w < Δ) relaxations, then its *heavy* edges are relaxed once.
Fewer relaxation rounds touch far-away vertices, which is exactly the
trade-off the delta-stepping paper quantifies — and what the ablation
bench measures against Bellman–Ford here.

The distributed mapping keeps the paper's BSP idiom: bucket membership is
derived from the distance array (no explicit queues), the active bucket
index is agreed on with one ``allreduce(MIN)`` per phase, and ghost
distances refresh with the retained-queue halo exchange.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import expand_rows
from ..graph.distgraph import DistGraph, GridGraph
from ..runtime import MIN, SUM, Communicator
from .exchange import HaloExchange
from .sssp import default_weights

__all__ = ["DeltaSteppingResult", "delta_stepping"]

INF = np.inf


@dataclass(frozen=True)
class DeltaSteppingResult:
    """Per-rank delta-stepping output."""

    distances: np.ndarray  # per local vertex; inf = unreachable
    n_phases: int  # buckets processed
    n_relax_rounds: int  # total light+heavy relaxation rounds
    reached: int


def delta_stepping(
    comm: Communicator,
    g: DistGraph | GridGraph,
    root_global: int,
    delta: float | None = None,
    weights: np.ndarray | None = None,
    halo: HaloExchange | None = None,
    max_rounds: int = 100_000,
) -> DeltaSteppingResult:
    """Shortest distances from ``root_global`` along out-edges.

    Parameters
    ----------
    delta:
        Bucket width; defaults to the mean edge weight (a standard
        heuristic).  Small Δ approaches Dijkstra (many cheap phases),
        large Δ approaches Bellman–Ford (few expensive phases).
    weights:
        Non-negative weight per local in-edge; defaults to the graph's
        edge values or the deterministic hash weights.

    Notes
    -----
    Results are identical to :func:`repro.analytics.sssp.sssp` for the
    same weights (asserted by tests).
    """
    if isinstance(g, GridGraph):
        from .frontier2d import grid_delta_stepping

        return grid_delta_stepping(comm, g, root_global, delta=delta,
                                   weights=weights, max_rounds=max_rounds)
    if not (0 <= root_global < g.n_global):
        raise ValueError("root out of range")
    with comm.region("delta_stepping"):
        if halo is None:
            halo = HaloExchange(comm, g)
        if weights is None:
            weights = (g.in_values if g.in_values is not None
                       else default_weights(g))
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != g.in_edges.shape:
            raise ValueError("weights must align with g.in_edges")
        if len(weights) and weights.min() < 0:
            raise ValueError("weights must be non-negative")
        if delta is None:
            total = comm.allreduce(float(weights.sum()), SUM)
            count = comm.allreduce(len(weights), SUM)
            delta = (total / count) if count else 1.0
        if delta <= 0:
            raise ValueError("delta must be positive")

        n_loc, n_tot = g.n_loc, g.n_total
        dist = np.full(n_tot, INF, dtype=np.float64)
        if g.partition.owner_of(np.array([root_global]))[0] == comm.rank:
            lid = int(g.partition.to_local(
                comm.rank, np.array([root_global]))[0])
            dist[lid] = 0.0
        halo.exchange(dist)

        rows = expand_rows(g.in_indexes)
        light = weights < delta
        settled_below = 0.0  # vertices with dist < settled_below are final

        n_phases = 0
        n_rounds = 0

        def relax(edge_mask: np.ndarray, src_active: np.ndarray) -> int:
            """One relaxation round over the masked edges; returns global
            number of improved local vertices."""
            use = edge_mask & src_active[g.in_edges]
            cand = np.where(use, dist[g.in_edges] + weights, INF)
            new = dist[:n_loc].copy()
            if len(cand):
                np.minimum.at(new, rows, cand)
            improved = comm.allreduce(
                int(np.count_nonzero(new < dist[:n_loc])), SUM)
            if improved:
                dist[:n_loc] = np.minimum(dist[:n_loc], new)
                halo.exchange(dist)
            return improved

        while n_rounds < max_rounds:
            # Find the lightest non-empty bucket at or above the frontier.
            finite = np.isfinite(dist[:n_loc]) & (dist[:n_loc] >= settled_below)
            local_min = float(dist[:n_loc][finite].min()) if finite.any() \
                else INF
            lo = comm.allreduce(local_min, MIN)
            if not np.isfinite(lo):
                break
            bucket_lo = np.floor(lo / delta) * delta
            bucket_hi = bucket_lo + delta
            n_phases += 1

            # Light-edge relaxations to a fixed point within the bucket.
            while n_rounds < max_rounds:
                in_bucket = (dist >= bucket_lo) & (dist < bucket_hi)
                n_rounds += 1
                if relax(light, in_bucket) == 0:
                    break
            # One heavy-edge pass from the settled bucket.
            in_bucket = (dist >= bucket_lo) & (dist < bucket_hi)
            n_rounds += 1
            relax(~light, in_bucket)
            settled_below = bucket_hi
        else:
            raise RuntimeError("delta_stepping: round budget exhausted")

        reached = comm.allreduce(
            int(np.count_nonzero(np.isfinite(dist[:n_loc]))), SUM)
        return DeltaSteppingResult(distances=dist[:n_loc].copy(),
                                   n_phases=n_phases,
                                   n_relax_rounds=n_rounds, reached=reached)
