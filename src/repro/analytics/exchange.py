"""Ghost (halo) value exchange — the PageRank-like communication pattern.

The paper's first class of analytics (PageRank, Label Propagation, the
coloring phase of WCC) propagates a per-vertex value to every neighbor each
iteration.  §III-D1 describes two key optimizations, both implemented here:

* **retained queues**: the set of (vertex, destination-rank) pairs is fixed
  across iterations, so the send queues are built once; each iteration
  sends *only the value array*, halving traffic versus resending ids;
* **one-time id translation**: global→local hash-map lookups happen only
  while building the retained queues; iterations index plain arrays.

On top of the paper's data-volume optimizations this layer removes the
*runtime* per-iteration costs MPI codes avoid with persistent requests:
:meth:`HaloExchange.exchange` drives a cached
:class:`~repro.runtime.AlltoallvPlan` per (dtype, trailing-shape) — packing
with one ``np.take`` into the plan's flat send buffer and scattering into
its preallocated receive buffer, with no per-peer Python lists, per-call
``np.split``/``np.concatenate``, or buffer re-validation.  Two further
modes share the retained queues:

* :meth:`HaloExchange.exchange_many` **fuses** k same-dtype 1-D arrays
  into one ``(n, k)`` payload and one collective — message aggregation in
  the Buluç-Madduri sense, paying one latency instead of k;
* :meth:`HaloExchange.exchange_delta` ships only the values that changed
  beyond a tolerance since they were last sent, switching between the
  dense plan and a sparse (index, value) wire format on the *global*
  fraction of active values — the direction-optimizing-BFS crossover idea
  applied to halo traffic.

:meth:`HaloExchange.exchange_with_ids` (rebuild ids every iteration) and
:meth:`HaloExchange.exchange_list` (list-of-arrays ``alltoallv``) are the
*unoptimized* variants, kept so the ablation benchmarks can measure what
the retained queues and the flat-buffer plan each buy.
"""

from __future__ import annotations

import numpy as np

from ..graph.distgraph import DistGraph
from ..runtime import AlltoallvPlan, Communicator, SUM

__all__ = ["HaloExchange"]


class HaloExchange:
    """Retained-queue ghost exchange for a distributed graph.

    After construction, :meth:`exchange` updates the ghost region
    (``values[n_loc:]``) of any ``(n_loc + n_gst)``-length array with the
    owners' current values, using one ``alltoallv`` of values only.

    Protocol (one-time setup): every rank sends each peer the list of
    global ids of its ghosts owned by that peer; the peer translates them
    to local ids once and *retains* that send list.  Because both sides
    keep their queue order fixed, per-iteration payloads need no ids.

    Plans are created lazily per (dtype, trailing-shape) and cached for
    the lifetime of the exchange.  Creation is purely local (both count
    vectors are known from setup), so laziness cannot desynchronize the
    collective schedule — but the analytics must still touch dtypes in
    the same order on every rank, which SPMD symmetry gives for free; a
    divergent order shows up as a plan-id mismatch in the verifier.

    ``g`` may be any graph-like exposing the :class:`DistGraph` surface
    used here (``n_loc``/``n_gst``/``unmap``/``map``/``ghost_tasks``) —
    in particular a :class:`~repro.stream.deltagraph.DynamicDistGraph`,
    which rebuilds its exchange whenever its ghost set changes.
    """

    def __init__(self, comm: Communicator, g: "DistGraph"):
        self.comm = comm
        self.g = g
        n_loc, n_gst = g.n_loc, g.n_gst
        p = comm.size

        # Order our ghosts by owning rank; that order is the contract for
        # every subsequent receive.
        order = np.argsort(g.ghost_tasks, kind="stable")
        self._ghost_lids = (n_loc + order).astype(np.int64)
        req_counts = np.bincount(g.ghost_tasks, minlength=p).astype(np.int64)
        req_gids = g.unmap[self._ghost_lids]

        # Peers answer with the ids they were asked for, in the order asked.
        with comm.region("halo.setup"):
            recv_gids, recv_counts = comm.alltoallv_flat(req_gids, req_counts)
        send_lids = g.map.get(recv_gids)
        if len(send_lids) and (send_lids.min() < 0 or send_lids.max() >= n_loc):
            raise ValueError(
                "halo setup received a vertex id this rank does not own")
        self._send_lids = send_lids
        self._send_counts = recv_counts.astype(np.int64)
        self._send_splits = np.cumsum(recv_counts)[:-1]
        self._recv_counts = req_counts
        # Prefix sums + per-row destination rank, for the sparse delta
        # wire format (indices relative to each destination block).
        self._send_starts = np.concatenate(
            ([0], np.cumsum(self._send_counts))).astype(np.int64)
        self._ghost_starts = np.concatenate(
            ([0], np.cumsum(req_counts))).astype(np.int64)
        self._send_dest = np.repeat(
            np.arange(p, dtype=np.int64), self._send_counts)
        self._plans: dict[tuple[np.dtype, tuple[int, ...]], AlltoallvPlan] = {}
        # Delta baselines are keyed by target-array identity: one halo can
        # serve several arrays (even of one dtype) without cross-talk.  The
        # stored strong reference keeps the id stable for the halo's life.
        self._delta: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    @property
    def n_sent_per_iter(self) -> int:
        """Values this rank ships to peers each :meth:`exchange` call."""
        return len(self._send_lids)

    @property
    def n_ghosts(self) -> int:
        return len(self._ghost_lids)

    def _plan_for(self, dtype: np.dtype,
                  tail: tuple[int, ...]) -> AlltoallvPlan:
        """Cached persistent plan for one (dtype, trailing-shape).

        Both count vectors come from setup, so creation never communicates
        — safe to do lazily on first use of a dtype.
        """
        key = (np.dtype(dtype), tail)
        plan = self._plans.get(key)
        if plan is None:
            plan = self.comm.alltoallv_plan(
                self._send_counts, recvcounts=self._recv_counts,
                dtype=key[0], tail=tail, name=f"halo:{key[0]}{list(tail)}")
            self._plans[key] = plan
        return plan

    def _check_length(self, values: np.ndarray) -> None:
        if len(values) != self.g.n_total:
            raise ValueError(
                f"values must have length n_loc+n_gst={self.g.n_total}, "
                f"got {len(values)}")

    def exchange(self, values: np.ndarray) -> np.ndarray:
        """Refresh the ghost entries of ``values`` in place (and return it).

        ``values`` must have length ``n_loc + n_gst``; entries
        ``[0, n_loc)`` are this rank's authoritative values and entries
        ``[n_loc, n_loc + n_gst)`` are overwritten with the owners' values.

        ``values`` may also be a 2-D ``(n_loc + n_gst, k)`` block (the
        batched analytics ship k values per ghost in one message); all
        ranks must use the same ``k`` (the plan signature carries it, so
        a mismatch fails loudly under the verifier instead of deadlocking).
        """
        self._check_length(values)
        plan = self._plan_for(values.dtype, values.shape[1:])
        np.take(values, self._send_lids, axis=0, out=plan.sendbuf)
        values[self._ghost_lids] = plan.execute()
        return values

    def exchange_many(self, *arrays: np.ndarray) -> None:
        """Refresh ghost entries of several arrays with fused collectives.

        1-D arrays sharing a dtype are stacked into one ``(n, k)`` payload
        and shipped in a single collective (k messages' worth of latency
        collapses to one); arrays that cannot fuse (unique dtype, or
        already 2-D) fall back to one :meth:`exchange` each.  Grouping is
        a pure function of the argument dtypes, so SPMD-symmetric calls
        produce identical schedules on every rank.
        """
        for a in arrays:
            self._check_length(a)
        groups: dict[np.dtype, list[int]] = {}
        for i, a in enumerate(arrays):
            if a.ndim == 1:
                groups.setdefault(a.dtype, []).append(i)
        fused: set[int] = set()
        for dt, idxs in groups.items():
            if len(idxs) < 2:
                continue
            plan = self._plan_for(dt, (len(idxs),))
            sb = plan.sendbuf
            for j, i in enumerate(idxs):
                sb[:, j] = arrays[i][self._send_lids]
            rb = plan.execute()
            for j, i in enumerate(idxs):
                arrays[i][self._ghost_lids] = rb[:, j]
            fused.update(idxs)
        for i, a in enumerate(arrays):
            if i not in fused:
                self.exchange(a)

    def exchange_delta(self, values: np.ndarray, tol: float = 0.0,
                       switch_fraction: float = 0.25) -> np.ndarray:
        """Refresh ghosts, shipping only values that changed since last sent.

        Per dtype the exchange remembers the value each retained-queue row
        last shipped; a row is *active* when it drifted from that baseline
        by more than ``tol`` (exact inequality for ``tol=0``, so integer
        codes like labels are propagated bitwise-exactly).  One scalar
        allreduce makes the dense/sparse decision *globally* — every rank
        takes the same path, keeping the collective schedule aligned:

        * active fraction ≥ ``switch_fraction`` (or first call): the dense
          persistent plan, byte-identical to :meth:`exchange`;
        * below it: two flat collectives ship (block-relative index,
          value) pairs for active rows only, and the receiver scatters
          them through the fixed retained-queue ordering.

        With ``tol > 0`` un-shipped ghost copies may lag their owner by up
        to ``tol`` — the PageRank-style approximation trade-off; the trace
        counters ``halo.delta.*`` record how many values and bytes the
        sparse rounds saved.

        Because un-shipped ghost rows rely on the *previous* refresh, the
        caller must pass the same persistent array every iteration (which
        is how every iterative analytic already uses its halo).
        """
        self._check_length(values)
        if values.ndim != 1:
            raise ValueError("exchange_delta supports 1-D value arrays only")
        comm = self.comm
        key = values.dtype
        cur = values[self._send_lids]
        state = self._delta.get(id(values))
        base = state[1] if state is not None else None
        if base is None:
            # Never primed: everything is active and (with any sane
            # switch_fraction) the decision below lands on the dense plan.
            active = np.ones(len(cur), dtype=bool)
        elif tol == 0:
            active = cur != base
        else:
            active = np.abs(cur - base) > tol
        n_active = int(np.count_nonzero(active))
        totals = comm.allreduce(
            np.array([n_active, len(cur)], dtype=np.int64), SUM)
        use_dense = (int(totals[1]) == 0
                     or int(totals[0]) >= switch_fraction * int(totals[1]))
        if use_dense:
            plan = self._plan_for(key, ())
            np.copyto(plan.sendbuf, cur)
            values[self._ghost_lids] = plan.execute()
            # cur is a fresh fancy-index copy: safe to keep as baseline
            self._delta[id(values)] = (values, cur)
            comm.trace.bump("halo.delta.dense_calls")
        else:
            idx = np.flatnonzero(active)
            dest = self._send_dest[idx]
            sc = np.bincount(dest, minlength=comm.size).astype(np.int64)
            rel = idx - self._send_starts[dest]
            ridx, rcounts = comm.alltoallv_flat(rel, sc)
            rvals, _ = comm.alltoallv_flat(cur[idx], sc)
            # Receives arrive ordered by source = owner, exactly how the
            # ghost region is blocked; block start + relative index lands
            # each value on its ghost row.
            pos = np.repeat(self._ghost_starts[:-1], rcounts) + ridx
            values[self._ghost_lids[pos]] = rvals
            if base is None:  # primed straight into sparse (everything ships)
                self._delta[id(values)] = (values, cur)
            else:
                base[idx] = cur[idx]
            comm.trace.bump("halo.delta.sparse_calls")
            comm.trace.bump("halo.delta.values_skipped", len(cur) - n_active)
            comm.trace.bump(
                "halo.delta.bytes_saved",
                (len(cur) - n_active) * key.itemsize - n_active * 8)
        return values

    # ------------------------------------------------------------------
    # unoptimized variants, kept for the ablation benchmarks
    # ------------------------------------------------------------------
    def exchange_list(self, values: np.ndarray) -> np.ndarray:
        """Pre-plan list path: fancy-index, ``np.split`` into p arrays, one
        object ``alltoallv``, ``concatenate`` on receive.  Functionally
        identical to :meth:`exchange`; exists to quantify what the flat
        buffer + persistent plan buy (see ``bench_comm`` / ablations).
        """
        self._check_length(values)
        payload = values[self._send_lids]
        send = np.split(payload, self._send_splits)
        # The object path IS the thing being measured here; the flat
        # equivalent is exchange() itself.
        data, counts = self.comm.alltoallv(send)  # spmdlint: disable=PERF002
        if not np.array_equal(counts, self._recv_counts):
            raise AssertionError("halo exchange count mismatch")
        # The all-empty receive path yields a flat buffer; restore trailing
        # dims so 2-D blocks assign cleanly.
        values[self._ghost_lids] = data.reshape((-1,) + values.shape[1:])
        return values

    def exchange_with_ids(self, values: np.ndarray) -> np.ndarray:
        """Unoptimized variant: resend (global id, value) pairs every call.

        Functionally identical to :meth:`exchange` but ships twice the data
        and performs a hash-map translation per call.  Exists to quantify
        the paper's retained-queue optimization (see ``bench_ablations``).
        """
        self._check_length(values)
        g = self.g
        payload = values[self._send_lids]
        gids = g.unmap[self._send_lids]
        send_vals = np.split(payload, self._send_splits)
        send_gids = np.split(gids, self._send_splits)
        # Deliberately unoptimized (the ablation baseline): keep the object
        # collective so the benchmark isolates the flat-path win.
        data, _ = self.comm.alltoallv(send_vals)  # spmdlint: disable=PERF002
        got_gids, _ = self.comm.alltoallv(send_gids)  # spmdlint: disable=PERF002
        lids = g.map.get(got_gids)
        if len(lids) and (lids < g.n_loc).any():
            raise AssertionError("received a non-ghost id in halo exchange")
        values[lids] = data
        return values
