"""Ghost (halo) value exchange — the PageRank-like communication pattern.

The paper's first class of analytics (PageRank, Label Propagation, the
coloring phase of WCC) propagates a per-vertex value to every neighbor each
iteration.  §III-D1 describes two key optimizations, both implemented here:

* **retained queues**: the set of (vertex, destination-rank) pairs is fixed
  across iterations, so the send queues are built once; each iteration
  sends *only the value array*, halving traffic versus resending ids;
* **one-time id translation**: global→local hash-map lookups happen only
  while building the retained queues; iterations index plain arrays.

:class:`HaloExchange` is the optimized path used by the analytics.
:meth:`HaloExchange.exchange_with_ids` is the *unoptimized* rebuild-every-
iteration variant (ids + values resent, hash map hit each time), kept so
the ablation benchmark can measure exactly what the paper's optimization
buys.
"""

from __future__ import annotations

import numpy as np

from ..graph.distgraph import DistGraph
from ..runtime import Communicator

__all__ = ["HaloExchange"]


class HaloExchange:
    """Retained-queue ghost exchange for a distributed graph.

    After construction, :meth:`exchange` updates the ghost region
    (``values[n_loc:]``) of any ``(n_loc + n_gst)``-length array with the
    owners' current values, using one ``alltoallv`` of values only.

    Protocol (one-time setup): every rank sends each peer the list of
    global ids of its ghosts owned by that peer; the peer translates them
    to local ids once and *retains* that send list.  Because both sides
    keep their queue order fixed, per-iteration payloads need no ids.
    """

    def __init__(self, comm: Communicator, g: DistGraph):
        self.comm = comm
        self.g = g
        n_loc, n_gst = g.n_loc, g.n_gst
        p = comm.size

        # Order our ghosts by owning rank; that order is the contract for
        # every subsequent receive.
        order = np.argsort(g.ghost_tasks, kind="stable")
        self._ghost_lids = (n_loc + order).astype(np.int64)
        req_counts = np.bincount(g.ghost_tasks, minlength=p)
        req_gids = g.unmap[self._ghost_lids]
        splits = np.cumsum(req_counts)[:-1]
        request_lists = np.split(req_gids, splits)

        # Peers answer with the ids they were asked for, in the order asked.
        with comm.region("halo.setup"):
            recv_gids, recv_counts = comm.alltoallv(request_lists)
        send_lids = g.map.get(recv_gids)
        if len(send_lids) and (send_lids.min() < 0 or send_lids.max() >= n_loc):
            raise ValueError(
                "halo setup received a vertex id this rank does not own")
        self._send_lids = send_lids
        self._send_splits = np.cumsum(recv_counts)[:-1]
        self._recv_counts = req_counts

    # ------------------------------------------------------------------
    @property
    def n_sent_per_iter(self) -> int:
        """Values this rank ships to peers each :meth:`exchange` call."""
        return len(self._send_lids)

    @property
    def n_ghosts(self) -> int:
        return len(self._ghost_lids)

    def exchange(self, values: np.ndarray) -> np.ndarray:
        """Refresh the ghost entries of ``values`` in place (and return it).

        ``values`` must have length ``n_loc + n_gst``; entries
        ``[0, n_loc)`` are this rank's authoritative values and entries
        ``[n_loc, n_loc + n_gst)`` are overwritten with the owners' values.

        ``values`` may also be a 2-D ``(n_loc + n_gst, k)`` block (the
        batched analytics ship k values per ghost in one message); all
        ranks must use the same ``k``.
        """
        if len(values) != self.g.n_total:
            raise ValueError(
                f"values must have length n_loc+n_gst={self.g.n_total}, "
                f"got {len(values)}")
        payload = values[self._send_lids]
        send = np.split(payload, self._send_splits)
        data, counts = self.comm.alltoallv(send)
        if not np.array_equal(counts, self._recv_counts):
            raise AssertionError("halo exchange count mismatch")
        # The all-empty receive path yields a flat buffer; restore trailing
        # dims so 2-D blocks assign cleanly.
        values[self._ghost_lids] = data.reshape((-1,) + values.shape[1:])
        return values

    def exchange_many(self, *arrays: np.ndarray) -> None:
        """Refresh ghost entries of several arrays (one alltoallv each)."""
        for a in arrays:
            self.exchange(a)

    # ------------------------------------------------------------------
    def exchange_with_ids(self, values: np.ndarray) -> np.ndarray:
        """Unoptimized variant: resend (global id, value) pairs every call.

        Functionally identical to :meth:`exchange` but ships twice the data
        and performs a hash-map translation per call.  Exists to quantify
        the paper's retained-queue optimization (see ``bench_ablations``).
        """
        if len(values) != self.g.n_total:
            raise ValueError("values must have length n_loc+n_gst")
        g = self.g
        payload = values[self._send_lids]
        gids = g.unmap[self._send_lids]
        send_vals = np.split(payload, self._send_splits)
        send_gids = np.split(gids, self._send_splits)
        data, _ = self.comm.alltoallv(send_vals)
        got_gids, _ = self.comm.alltoallv(send_gids)
        lids = g.map.get(got_gids)
        if len(lids) and (lids < g.n_loc).any():
            raise AssertionError("received a non-ghost id in halo exchange")
        values[lids] = data
        return values
