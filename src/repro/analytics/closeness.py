"""Closeness centrality (§VII extension; companion to harmonic).

Closeness is the other distance-based centrality the Boldi–Vigna axioms
paper (the paper's harmonic-centrality reference) analyzes: for the set R
of vertices that can reach v, ``closeness(v) = (|R|-1) / Σ_{u∈R} d(u,v)``,
with the Wasserman–Faust component scaling ``(|R|-1)/(n-1)`` applied so
scores of different components are comparable — exactly NetworkX's
``closeness_centrality`` definition (tested against it).

Like harmonic centrality, one vertex costs one reverse BFS.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.distgraph import DistGraph
from ..runtime import SUM, Communicator
from .bfs import distributed_bfs

__all__ = ["ClosenessResult", "closeness_centrality"]


@dataclass(frozen=True)
class ClosenessResult:
    """Closeness of one vertex plus reach statistics."""

    vertex: int
    score: float  # Wasserman-Faust scaled (NetworkX default)
    score_unscaled: float  # (|R|-1) / total distance
    n_reaching: int
    total_distance: int


def closeness_centrality(
    comm: Communicator, g: DistGraph, v_global: int
) -> ClosenessResult:
    """Closeness centrality of one global vertex (one reverse BFS)."""
    if not (0 <= v_global < g.n_global):
        raise ValueError(f"vertex {v_global} out of range")
    with comm.region("closeness"):
        lev = distributed_bfs(comm, g, v_global, direction="in")
        reached = lev > 0
        local_sum = int(lev[reached].sum())
        local_cnt = int(reached.sum())
        total = comm.allreduce(local_sum, SUM)
        count = comm.allreduce(local_cnt, SUM)
        if total == 0 or count == 0:
            return ClosenessResult(vertex=int(v_global), score=0.0,
                                   score_unscaled=0.0, n_reaching=0,
                                   total_distance=0)
        unscaled = count / total
        n = g.n_global
        scale = count / (n - 1) if n > 1 else 1.0
        return ClosenessResult(
            vertex=int(v_global),
            score=unscaled * scale,
            score_unscaled=unscaled,
            n_reaching=count,
            total_distance=total,
        )
