"""Distributed HITS — hubs and authorities (§VII extension).

Kleinberg's HITS is *the* classical hyperlink-graph analytic beside
PageRank, and another pure member of the paper's PageRank-like class: each
iteration the authority score pulls hub mass over in-edges, the hub score
pulls authority mass over out-edges, and one halo exchange per direction
refreshes the ghosts.  Scores are L2-normalized globally per iteration
(NetworkX-compatible output is L1-normalized at the end).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import segment_sum
from ..graph.distgraph import DistGraph
from ..runtime import SUM, Communicator
from .exchange import HaloExchange

__all__ = ["HITSResult", "hits"]


@dataclass(frozen=True)
class HITSResult:
    """Per-rank HITS output (L1-normalized, NetworkX convention)."""

    hubs: np.ndarray
    authorities: np.ndarray
    n_iters: int
    final_delta: float


def hits(
    comm: Communicator,
    g: DistGraph,
    max_iters: int = 100,
    tol: float | None = 1e-8,
    halo: HaloExchange | None = None,
) -> HITSResult:
    """Compute hub and authority scores of every vertex.

    Parameters
    ----------
    max_iters:
        Iteration budget.
    tol:
        Global L1 convergence threshold on the hub vector (per-iteration
        change); ``None`` runs the full budget.

    Returns
    -------
    HITSResult
        Hub and authority vectors each sum to 1 globally (matching
        ``networkx.hits``; tested against it).
    """
    if max_iters < 1:
        raise ValueError("max_iters must be >= 1")
    with comm.region("hits"):
        if halo is None:
            halo = HaloExchange(comm, g)
        n_loc, n_tot = g.n_loc, g.n_total

        h = np.full(n_tot, 1.0 / max(g.n_global, 1), dtype=np.float64)
        a = np.zeros(n_tot, dtype=np.float64)

        n_iters = 0
        delta = float("inf")
        for _ in range(max_iters):
            h_old = h[:n_loc].copy()
            # Authorities: sum of hub scores over in-edges.
            a_new = segment_sum(g.in_indexes, h[g.in_edges])
            a[:n_loc] = a_new
            norm = np.sqrt(comm.allreduce(float((a_new**2).sum()), SUM))
            if norm > 0:
                a[:n_loc] /= norm
            halo.exchange(a)
            # Hubs: sum of authority scores over out-edges.
            h_new = segment_sum(g.out_indexes, a[g.out_edges])
            h[:n_loc] = h_new
            norm = np.sqrt(comm.allreduce(float((h_new**2).sum()), SUM))
            if norm > 0:
                h[:n_loc] /= norm
            halo.exchange(h)
            n_iters += 1
            delta = comm.allreduce(
                float(np.abs(h[:n_loc] - h_old).sum()), SUM)
            if tol is not None and delta < tol:
                break

        # L1-normalize for the conventional (NetworkX) output scale.
        h_sum = comm.allreduce(float(h[:n_loc].sum()), SUM)
        a_sum = comm.allreduce(float(a[:n_loc].sum()), SUM)
        hubs = h[:n_loc] / h_sum if h_sum > 0 else h[:n_loc].copy()
        auth = a[:n_loc] / a_sum if a_sum > 0 else a[:n_loc].copy()
        return HITSResult(hubs=hubs, authorities=auth, n_iters=n_iters,
                          final_delta=float(delta))
