"""Distributed betweenness centrality (Brandes, level-synchronous; §VII).

The heaviest member added to the paper's analytic collection: Brandes'
algorithm computes, per source vertex, shortest-path counts by a forward
level sweep and dependency accumulation by a backward level sweep.  Both
sweeps are expressible in the repository's bulk-synchronous idiom — one
segmented reduction per level plus one halo exchange — so betweenness is
"BFS-like" with a backward pass.

Exact betweenness needs every vertex as a source (O(nm)); web-scale use
samples ``k`` sources uniformly and scales the estimate (Brandes & Pich),
mirroring how the paper restricts Harmonic Centrality to top-degree seeds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import segment_sum
from ..graph.distgraph import DistGraph
from ..runtime import MAX, Communicator
from .bfs import distributed_bfs
from .exchange import HaloExchange

__all__ = ["BetweennessResult", "betweenness_centrality"]


@dataclass(frozen=True)
class BetweennessResult:
    """Per-rank betweenness output."""

    scores: np.ndarray  # per local vertex
    n_sources: int
    normalized: bool


def _accumulate_source(
    comm: Communicator,
    g: DistGraph,
    halo: HaloExchange,
    source: int,
    bc: np.ndarray,
) -> None:
    """Add source's dependencies into ``bc`` (Brandes inner loop)."""
    n_loc, n_tot = g.n_loc, g.n_total

    levels = np.full(n_tot, -2, dtype=np.int64)
    levels[:n_loc] = distributed_bfs(comm, g, source, direction="out")
    halo.exchange(levels)
    local_max = int(levels[:n_loc].max()) if n_loc else -2
    max_level = int(comm.allreduce(local_max, MAX))
    if max_level < 1:
        return  # source unreachable from anything or isolated

    # Forward sweep: shortest-path counts per level.
    sigma = np.zeros(n_tot, dtype=np.float64)
    owner = g.partition.owner_of(np.array([source]))[0]
    if owner == comm.rank:
        sigma[g.partition.to_local(comm.rank, np.array([source]))[0]] = 1.0
    halo.exchange(sigma)
    for level in range(1, max_level + 1):
        from_prev = levels[g.in_edges] == level - 1
        contrib = np.where(from_prev, sigma[g.in_edges], 0.0)
        sums = segment_sum(g.in_indexes, contrib)
        at_level = levels[:n_loc] == level
        sigma[:n_loc][at_level] = sums[at_level]
        halo.exchange(sigma)

    # Backward sweep: dependency accumulation.
    delta = np.zeros(n_tot, dtype=np.float64)
    for level in range(max_level - 1, -1, -1):
        succ = levels[g.out_edges] == level + 1
        safe_sigma = np.maximum(sigma[g.out_edges], 1.0)
        contrib = np.where(succ, (1.0 + delta[g.out_edges]) / safe_sigma, 0.0)
        sums = segment_sum(g.out_indexes, contrib)
        at_level = levels[:n_loc] == level
        delta[:n_loc][at_level] = sigma[:n_loc][at_level] * sums[at_level]
        halo.exchange(delta)

    credit = delta[:n_loc].copy()
    if owner == comm.rank:
        credit[g.partition.to_local(comm.rank, np.array([source]))[0]] = 0.0
    bc += credit


def betweenness_centrality(
    comm: Communicator,
    g: DistGraph,
    sources: np.ndarray | None = None,
    k: int | None = None,
    seed: int = 0,
    normalized: bool = False,
    halo: HaloExchange | None = None,
) -> BetweennessResult:
    """Betweenness centrality over directed shortest paths.

    Parameters
    ----------
    sources:
        Explicit global source ids; exact betweenness uses all vertices
        (the default when ``k`` is also None).
    k:
        Sample this many sources uniformly at random instead (estimates
        are scaled by ``n/k``, the Brandes–Pich estimator).
    normalized:
        Divide by ``(n-1)(n-2)``, NetworkX's directed normalization.

    Returns
    -------
    BetweennessResult
        ``scores[i]`` for local vertex ``i``; exact runs match NetworkX's
        ``betweenness_centrality`` (tested).
    """
    with comm.region("betweenness"):
        if halo is None:
            halo = HaloExchange(comm, g)
        n = g.n_global
        if sources is not None and k is not None:
            raise ValueError("pass either sources or k, not both")
        scale = 1.0
        if sources is not None:
            sources = np.atleast_1d(np.asarray(sources, dtype=np.int64))
            if len(sources) and (sources.min() < 0 or sources.max() >= n):
                raise ValueError("source id out of range")
        elif k is not None:
            if not (1 <= k <= n):
                raise ValueError("k must be in [1, n]")
            rng = np.random.default_rng(seed)  # same seed ⇒ same on all ranks
            sources = rng.choice(n, size=k, replace=False).astype(np.int64)
            scale = n / k
        else:
            sources = np.arange(n, dtype=np.int64)

        bc = np.zeros(g.n_loc, dtype=np.float64)
        for s in sources:
            _accumulate_source(comm, g, halo, int(s), bc)

        bc *= scale
        if normalized and n > 2:
            bc /= (n - 1) * (n - 2)
        return BetweennessResult(scores=bc, n_sources=len(sources),
                                 normalized=normalized)
