"""Batched multi-query analytics — the serving-layer kernels.

A long-lived serving deployment (``repro.service``) sees many small queries
against one resident graph.  Running k BFS-like queries one at a time costs
k × (levels × alltoallv); running them *together* shares every frontier
exchange and every termination allreduce across the batch, which is exactly
the regime where Buluç & Madduri's batched-frontier techniques pay off at
small message sizes (the alpha term dominates).

Two kernels:

* :func:`multi_source_bfs` — level-synchronous BFS from k roots at once.
  The per-vertex ``Status`` array of Algorithm 2 becomes one contiguous
  row per source; each level expands every source's frontier locally and
  then ships all ghost discoveries in exactly one ``alltoallv`` and one
  termination ``allreduce`` — shared by all k traversals.

* :func:`batched_personalized_pagerank` — blocked power iteration for k
  personalization seeds.  The rank vector becomes an ``(n_tot, k)`` block;
  each iteration is one segmented sum over the in-CSR applied to all
  columns and *one* halo exchange of the whole block (k values per ghost
  in one message instead of k messages).

:func:`batched_closeness` derives k closeness centralities from one
reverse multi-source BFS.  All three are validated against their looped
single-source counterparts in ``tests/test_batched.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import sorted_unique
from ..graph.distgraph import DistGraph
from ..runtime import SUM, Communicator
from .bfs import _frontier_neighbors
from .closeness import ClosenessResult
from .common import NOT_VISITED, QUEUED
from .exchange import HaloExchange

__all__ = [
    "multi_source_bfs",
    "batched_personalized_pagerank",
    "batched_closeness",
    "BatchedPPRResult",
]


_EMPTY = np.empty(0, dtype=np.int64)


def multi_source_bfs(
    comm: Communicator,
    g: DistGraph,
    sources_global,
    direction: str = "out",
    max_levels: int | None = None,
) -> np.ndarray:
    """Level-synchronous BFS from ``k`` global roots simultaneously.

    Unlike :func:`~repro.analytics.bfs.distributed_bfs` with multiple
    roots (which merges them into *one* traversal), every source here gets
    its own independent level column; the k traversals share each level's
    frontier exchange and termination reduction.

    Each source keeps its own contiguous status row and frontier, so the
    per-source expansion work is byte-for-byte that of the single-source
    kernel; only the communication is fused.  Ghost discoveries from all
    sources travel in one ``alltoallv`` as ``source * n + gid`` codes
    (sorted codes group by source, so the receiver splits the batch with
    one ``searchsorted`` and decodes with a subtraction).

    Parameters
    ----------
    sources_global:
        Array of k global vertex ids (duplicates allowed; each gets its
        own column).
    direction:
        ``"out"``, ``"in"`` or ``"both"`` — as in :func:`distributed_bfs`.
    max_levels:
        Stop after this many levels even if frontiers remain.

    Returns
    -------
    levels:
        ``(n_loc, k)`` int64 matrix; ``levels[v, j]`` is the BFS level of
        local vertex ``v`` from source j, or ``NOT_VISITED`` (−2).
    """
    if direction not in ("out", "in", "both"):
        raise ValueError(
            f"direction must be 'out', 'in' or 'both', got {direction!r}")
    sources = np.atleast_1d(np.asarray(sources_global, dtype=np.int64))
    k = len(sources)
    n_loc, n = g.n_loc, g.n_global
    if k and (sources.min() < 0 or sources.max() >= n):
        raise ValueError("source id out of range")
    if k and n and k > (2**62) // n:
        raise ValueError("batch too large to pack (source, vertex) codes")
    # Row j is source j's status over local + ghost vertices (contiguous,
    # so each traversal touches the same memory as a single-source run).
    status = np.full((k, g.n_total), NOT_VISITED, dtype=np.int64)

    # Seed each frontier with the source if this rank owns it.
    mine = np.flatnonzero(g.partition.owner_of(sources) == comm.rank)
    my_lids = g.partition.to_local(comm.rank, sources[mine])
    frontiers: list[np.ndarray] = [_EMPTY] * k
    for j, lid in zip(mine, my_lids):
        frontiers[j] = np.array([lid], dtype=np.int64)
        status[j, lid] = QUEUED

    lvl = 0
    global_size = comm.allreduce(sum(len(f) for f in frontiers), SUM)
    while global_size > 0:
        if max_levels is not None and lvl >= max_levels:
            break
        owner_chunks: list[np.ndarray] = []
        code_chunks: list[np.ndarray] = []
        nxt: list[np.ndarray] = [_EMPTY] * k
        for j in range(k):
            f = frontiers[j]
            if not len(f):
                continue
            row = status[j]
            row[f] = lvl  # settle this level
            nbrs = _frontier_neighbors(g, f, direction)
            discovered = sorted_unique(nbrs[row[nbrs] == NOT_VISITED])
            row[discovered] = QUEUED
            nxt[j] = discovered[discovered < n_loc]
            ghosts = discovered[discovered >= n_loc]
            if len(ghosts):
                owner_chunks.append(g.ghost_tasks[ghosts - n_loc])
                code_chunks.append(j * n + g.unmap[ghosts])

        # Ship every source's ghost discoveries to their owners in one
        # shared alltoallv per level.
        owners = (np.concatenate(owner_chunks) if owner_chunks else _EMPTY)
        codes = (np.concatenate(code_chunks) if code_chunks else _EMPTY)
        order = np.argsort(owners, kind="stable")
        counts = np.bincount(owners, minlength=comm.size)
        recv, _ = comm.alltoallv_flat(codes[order], counts)

        if len(recv):
            recv = sorted_unique(recv)  # same pair may arrive from n ranks
            bounds = np.searchsorted(recv, np.arange(k + 1) * n)
            for j in range(k):
                lo, hi = bounds[j], bounds[j + 1]
                if lo == hi:
                    continue
                row = status[j]
                lids = g.map.get(recv[lo:hi] - j * n)
                new = lids[row[lids] == NOT_VISITED]
                row[new] = QUEUED
                nxt[j] = np.concatenate([nxt[j], new])
        frontiers = nxt

        lvl += 1
        global_size = comm.allreduce(sum(len(f) for f in frontiers), SUM)

    return np.ascontiguousarray(status[:, :n_loc].T)


@dataclass(frozen=True)
class BatchedPPRResult:
    """Per-rank blocked personalized-PageRank output."""

    scores: np.ndarray  # (n_loc, k): column j is the PPR for seed j
    seeds: np.ndarray  # (k,) global seed vertex ids
    n_iters: int
    final_deltas: np.ndarray  # (k,) global L1 change of the last iteration


def batched_personalized_pagerank(
    comm: Communicator,
    g: DistGraph,
    seeds_global,
    damping: float = 0.85,
    max_iters: int = 20,
    tol: float | None = None,
    halo: HaloExchange | None = None,
) -> BatchedPPRResult:
    """Personalized PageRank for k teleport seeds in one blocked sweep.

    Column j solves the same fixed point as
    ``pagerank(..., personalization=indicator(seed_j))``: all teleport
    (and dangling) mass returns to the single seed vertex.  The k power
    iterations advance in lockstep, so every iteration costs one blocked
    segment-sum and one ``(n_gst, k)`` halo exchange instead of k of each.

    Returns
    -------
    BatchedPPRResult
        Each column sums to 1 across ranks (up to floating-point error).
    """
    if not (0.0 < damping < 1.0):
        raise ValueError("damping must be in (0, 1)")
    if max_iters < 0:
        raise ValueError("max_iters must be non-negative")
    seeds = np.atleast_1d(np.asarray(seeds_global, dtype=np.int64))
    k = len(seeds)
    if k == 0:
        raise ValueError("need at least one seed")
    if seeds.min() < 0 or seeds.max() >= g.n_global:
        raise ValueError("seed id out of range")
    with comm.region("ppr.batched"):
        if halo is None:
            halo = HaloExchange(comm, g)
        n_loc, n_tot = g.n_loc, g.n_total

        # Teleport block: column j is the indicator of seed j (owned on
        # exactly one rank, so each column's global mass is exactly 1).
        teleport = np.zeros((n_loc, k), dtype=np.float64)
        mine = np.flatnonzero(g.partition.owner_of(seeds) == comm.rank)
        teleport[g.partition.to_local(comm.rank, seeds[mine]), mine] = 1.0

        outdeg = np.zeros(n_tot, dtype=np.float64)
        outdeg[:n_loc] = g.out_degrees()
        halo.exchange(outdeg)
        safe_outdeg = np.where(outdeg > 0, outdeg, 1.0)
        dangling_local = outdeg[:n_loc] == 0

        x = np.zeros((n_tot, k), dtype=np.float64)
        x[:n_loc] = teleport
        halo.exchange(x)
        base = (1.0 - damping) * teleport

        n_iters = 0
        deltas = np.full(k, np.inf)
        for _ in range(max_iters):
            contrib = x / safe_outdeg[:, None]
            contrib[outdeg == 0, :] = 0.0
            sums = _segment_sum_block(g.in_indexes, contrib[g.in_edges])
            dangling = comm.allreduce(x[:n_loc][dangling_local].sum(axis=0),
                                      SUM)
            x_new = base + damping * (sums + teleport * dangling)
            deltas = comm.allreduce(
                np.abs(x_new - x[:n_loc]).sum(axis=0), SUM)
            x[:n_loc] = x_new
            halo.exchange(x)
            n_iters += 1
            if tol is not None and float(deltas.max()) < tol:
                break

        return BatchedPPRResult(scores=x[:n_loc].copy(), seeds=seeds.copy(),
                                n_iters=n_iters,
                                final_deltas=np.asarray(deltas, dtype=np.float64))


def _segment_sum_block(indptr: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Per-row sum of an ``(nnz, k)`` block over a CSR (empty rows → 0)."""
    n = len(indptr) - 1
    out = np.zeros((n, values.shape[1]), dtype=np.float64)
    if len(values) == 0 or n == 0:
        return out
    nonempty = indptr[:-1] < indptr[1:]
    if not nonempty.any():
        return out
    starts = indptr[:-1][nonempty]
    out[nonempty] = np.add.reduceat(values, starts, axis=0)
    return out


def batched_closeness(
    comm: Communicator, g: DistGraph, vertices_global
) -> list[ClosenessResult]:
    """Closeness centrality of k vertices from one reverse multi-source BFS.

    Matches :func:`~repro.analytics.closeness.closeness_centrality` per
    vertex (Wasserman–Faust scaled, NetworkX's definition) but shares the
    per-level communication across the batch.
    """
    vertices = np.atleast_1d(np.asarray(vertices_global, dtype=np.int64))
    if len(vertices) and (vertices.min() < 0 or vertices.max() >= g.n_global):
        raise ValueError("vertex id out of range")
    with comm.region("closeness.batched"):
        lev = multi_source_bfs(comm, g, vertices, direction="in")
        reached = lev > 0
        totals = comm.allreduce(
            np.where(reached, lev, 0).sum(axis=0, dtype=np.int64), SUM)
        counts = comm.allreduce(reached.sum(axis=0, dtype=np.int64), SUM)
    totals = np.atleast_1d(np.asarray(totals))
    counts = np.atleast_1d(np.asarray(counts))
    n = g.n_global
    out: list[ClosenessResult] = []
    for j, v in enumerate(vertices):
        total, count = int(totals[j]), int(counts[j])
        if total == 0 or count == 0:
            out.append(ClosenessResult(vertex=int(v), score=0.0,
                                       score_unscaled=0.0, n_reaching=0,
                                       total_distance=0))
            continue
        unscaled = count / total
        scale = count / (n - 1) if n > 1 else 1.0
        out.append(ClosenessResult(vertex=int(v), score=unscaled * scale,
                                   score_unscaled=unscaled,
                                   n_reaching=count, total_distance=total))
    return out
