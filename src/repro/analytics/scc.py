"""Largest strongly connected component via Forward–Backward (paper §III-D).

The paper extracts the largest SCC of the web crawl with the FW–BW method
(Fleischer, Hendrickson & Pinar, 2000) built on the distributed BFS kernel:

1. **Trimming** — repeatedly discard vertices with zero in- or out-degree
   inside the remaining set (each is a size-1 SCC); this shrinks web graphs
   dramatically before any traversal.
2. **Pivoting** — the highest-degree surviving vertex almost surely lies in
   the giant SCC of a bow-tie-shaped graph.
3. **Forward/backward sweeps** — BFS over out-edges and over in-edges from
   the pivot, both restricted to the surviving set; their intersection is
   the pivot's SCC.

``largest_scc`` returns the membership mask; :func:`scc` additionally
labels the remaining vertices by recursive FW–BW on the three leftover
sets, yielding the full SCC decomposition (the paper only needs the
largest; the full decomposition is provided as the natural extension).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.distgraph import DistGraph
from ..runtime import MIN, SUM, Communicator
from .bfs import distributed_bfs
from .common import global_max_degree_vertex
from .exchange import HaloExchange

__all__ = ["SCCResult", "largest_scc", "scc"]


@dataclass(frozen=True)
class SCCResult:
    """Per-rank output of the largest-SCC extraction."""

    in_scc: np.ndarray  # bool per local vertex
    size: int  # global size of the extracted SCC
    pivot: int  # global id of the pivot vertex (-1 for empty graphs)
    n_trimmed: int  # vertices discarded by trimming (global)
    trim_rounds: int


def _trim(
    comm: Communicator,
    g: DistGraph,
    halo: HaloExchange,
    alive: np.ndarray,
    max_rounds: int | None,
) -> tuple[int, int]:
    """Iteratively remove zero-in/out-degree vertices from ``alive``.

    ``alive`` is a bool array over local + ghost vertices, updated in
    place (ghost entries kept current via halo exchange).  Returns the
    global number trimmed and the number of rounds.
    """
    from ..graph.csr import segment_sum

    n_loc = g.n_loc
    trimmed_total = 0
    rounds = 0
    while max_rounds is None or rounds < max_rounds:
        alive_f = alive.astype(np.int64)
        indeg = segment_sum(g.in_indexes, alive_f[g.in_edges]) if g.m_in else \
            np.zeros(n_loc, dtype=np.int64)
        outdeg = segment_sum(g.out_indexes, alive_f[g.out_edges]) if g.m_out else \
            np.zeros(n_loc, dtype=np.int64)
        kill = alive[:n_loc] & ((indeg == 0) | (outdeg == 0))
        n_kill = comm.allreduce(int(kill.sum()), SUM)
        if n_kill == 0:
            break
        alive[:n_loc][kill] = False
        halo.exchange(alive)
        trimmed_total += n_kill
        rounds += 1
    return trimmed_total, rounds


def largest_scc(
    comm: Communicator,
    g: DistGraph,
    halo: HaloExchange | None = None,
    trim_rounds: int | None = None,
) -> SCCResult:
    """Extract the (almost surely) largest SCC with trim + FW–BW.

    The pivot is the max-total-degree vertex surviving trimming; for
    bow-tie-structured graphs this is the giant SCC.  ``trim_rounds``
    bounds trimming (``None`` = to fixed point; the paper-style complete
    trim).
    """
    with comm.region("scc"):
        if halo is None:
            halo = HaloExchange(comm, g)
        n_loc, n_tot = g.n_loc, g.n_total

        alive = np.ones(n_tot, dtype=bool)
        n_trimmed, rounds = _trim(comm, g, halo, alive, trim_rounds)

        pivot, _deg = global_max_degree_vertex(comm, g, restrict=alive)
        if pivot < 0:
            return SCCResult(
                in_scc=np.zeros(n_loc, dtype=bool), size=0, pivot=-1,
                n_trimmed=n_trimmed, trim_rounds=rounds)

        fwd = distributed_bfs(comm, g, pivot, direction="out", restrict=alive)
        bwd = distributed_bfs(comm, g, pivot, direction="in", restrict=alive)
        in_scc = (fwd >= 0) & (bwd >= 0)
        size = comm.allreduce(int(in_scc.sum()), SUM)
        return SCCResult(in_scc=in_scc, size=size, pivot=pivot,
                         n_trimmed=n_trimmed, trim_rounds=rounds)


def scc(
    comm: Communicator,
    g: DistGraph,
    halo: HaloExchange | None = None,
    max_pivots: int = 10_000,
) -> np.ndarray:
    """Full SCC decomposition by iterated FW–BW.

    Returns an int64 label per local vertex: the minimum global vertex id
    of its SCC (canonical, so results are rank-count independent).

    The descend order is breadth-only (a work queue of unresolved vertex
    sets is not materialized; instead the undecided set shrinks after each
    pivot round), which is sufficient for graphs whose SCC count is modest
    after trimming.  ``max_pivots`` guards pathological inputs.
    """
    with comm.region("scc_full"):
        if halo is None:
            halo = HaloExchange(comm, g)
        n_loc, n_tot = g.n_loc, g.n_total
        labels = np.full(n_loc, -1, dtype=np.int64)
        undecided = np.ones(n_tot, dtype=bool)

        for _ in range(max_pivots):
            # Trivial SCCs: trimming assigns singleton labels immediately.
            alive = undecided.copy()
            while True:
                from ..graph.csr import segment_sum

                alive_f = alive.astype(np.int64)
                indeg = segment_sum(g.in_indexes, alive_f[g.in_edges])
                outdeg = segment_sum(g.out_indexes, alive_f[g.out_edges])
                kill = alive[:n_loc] & ((indeg == 0) | (outdeg == 0))
                n_kill = comm.allreduce(int(kill.sum()), SUM)
                if n_kill == 0:
                    break
                labels[kill] = g.unmap[:n_loc][kill]
                alive[:n_loc][kill] = False
                undecided[:n_loc][kill] = False
                halo.exchange(alive)
            halo.exchange(undecided)

            n_left = comm.allreduce(int(undecided[:n_loc].sum()), SUM)
            if n_left == 0:
                break

            pivot, _deg = global_max_degree_vertex(comm, g, restrict=undecided)
            fwd = distributed_bfs(comm, g, pivot, direction="out",
                                  restrict=undecided)
            bwd = distributed_bfs(comm, g, pivot, direction="in",
                                  restrict=undecided)
            members = (fwd >= 0) & (bwd >= 0)
            local_min = (int(g.unmap[:n_loc][members].min())
                         if members.any() else g.n_global)
            label = comm.allreduce(local_min, MIN)
            labels[members] = label
            undecided[:n_loc][members] = False
            halo.exchange(undecided)
        else:
            raise RuntimeError("scc: pivot budget exhausted")

        return labels
