"""Approximate k-core decomposition (paper §III-D, Fig. 6).

The exact coreness of every vertex is expensive at web scale, so the paper
computes *upper bounds* by a geometric sweep: for ``i = 1..27`` it
iteratively removes vertices of (total) degree below ``2^i`` and then keeps
only the largest connected component of the pruned graph.  A vertex
eliminated during stage ``i`` therefore has coreness below ``2^i``; the
survivors of stage ``i`` form (the giant component of) the ``2^i``-core.

We record, for each vertex, the last stage it survived; Fig. 6's cumulative
coreness distribution follows directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.distgraph import DistGraph
from ..runtime import SUM, Communicator
from .bfs import distributed_bfs
from .common import alive_degree, global_max_degree_vertex
from .exchange import HaloExchange

__all__ = ["KCoreResult", "approx_kcore"]


@dataclass(frozen=True)
class KCoreResult:
    """Per-rank approximate-coreness output.

    ``stage_removed[v] = i`` means local vertex ``v`` was eliminated during
    the ``2^i`` stage (degree pruning or falling outside the largest
    component), bounding its coreness by ``2^i − 1``; vertices surviving
    the whole sweep hold ``max_stage + 1``.
    """

    stage_removed: np.ndarray  # int64 per local vertex
    stages_run: int
    survivors: int  # global count of vertices surviving every stage

    def coreness_upper_bound(self) -> np.ndarray:
        """Per-vertex coreness upper bound (``2^stage − 1``)."""
        return (1 << self.stage_removed.astype(np.int64)) - 1


def approx_kcore(
    comm: Communicator,
    g: DistGraph,
    max_stage: int = 27,
    halo: HaloExchange | None = None,
    lcc_restrict: bool = True,
) -> KCoreResult:
    """Run the geometric k-core sweep.

    Parameters
    ----------
    max_stage:
        Highest stage ``i`` (threshold ``2^i``); the paper uses 27.  The
        sweep ends early once no vertices survive.
    lcc_restrict:
        When true (the paper's procedure), each stage additionally keeps
        only the largest connected component of the pruned graph — an
        approximation that can under-estimate bounds of vertices in other
        dense components.  With ``False`` the survivors of stage ``i`` are
        exactly the ``2^i``-core shell union, making
        :meth:`KCoreResult.coreness_upper_bound` a true upper bound on the
        (degree-based) coreness of every vertex.
    """
    if max_stage < 1:
        raise ValueError("max_stage must be >= 1")
    with comm.region("kcore"):
        if halo is None:
            halo = HaloExchange(comm, g)
        n_loc, n_tot = g.n_loc, g.n_total

        alive = np.ones(n_tot, dtype=bool)
        stage_removed = np.zeros(n_loc, dtype=np.int64)
        stages_run = 0
        survivors = comm.allreduce(n_loc, SUM)

        for i in range(1, max_stage + 1):
            k = 1 << i
            # Peel to a fixed point of "remove alive vertices with < k alive
            # neighbors" (the (2^i)-core of the remaining graph).
            while True:
                deg = alive_degree(g, alive)
                kill = alive[:n_loc] & (deg < k)
                n_kill = comm.allreduce(int(kill.sum()), SUM)
                if n_kill == 0:
                    break
                stage_removed[kill] = i
                alive[:n_loc][kill] = False
                halo.exchange(alive)

            n_alive = comm.allreduce(int(alive[:n_loc].sum()), SUM)
            stages_run = i
            if n_alive == 0:
                survivors = 0
                break

            # Keep only the largest connected component of the pruned graph.
            if lcc_restrict:
                pivot, _ = global_max_degree_vertex(comm, g, restrict=alive)
                lev = distributed_bfs(comm, g, pivot, direction="both",
                                      restrict=alive)
                outside = alive[:n_loc] & (lev < 0)
                n_out = comm.allreduce(int(outside.sum()), SUM)
                if n_out:
                    stage_removed[outside] = i
                    alive[:n_loc][outside] = False
                    halo.exchange(alive)
                survivors = n_alive - n_out
            else:
                survivors = n_alive
        else:
            # Survivors of the full sweep: coreness bound is open-ended.
            still = alive[:n_loc]
            stage_removed[still] = max_stage + 1

        return KCoreResult(stage_removed=stage_removed, stages_run=stages_run,
                           survivors=survivors)
