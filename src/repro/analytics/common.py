"""Shared helpers for the distributed analytics."""

from __future__ import annotations

import numpy as np

from ..graph.csr import expand_rows
from ..graph.distgraph import DistGraph
from ..runtime import MAXLOC, SUM, Communicator

__all__ = [
    "NOT_VISITED",
    "QUEUED",
    "combined_adjacency",
    "global_max_degree_vertex",
    "alive_degree",
]

# Status-array encoding of the paper's Algorithm 2.
NOT_VISITED = -2
QUEUED = -1


def combined_adjacency(g: DistGraph, direction: str) -> tuple[np.ndarray, np.ndarray]:
    """(rows, neighbors) flat adjacency pairs of local vertices.

    ``direction`` selects out-edges, in-edges, or the concatenation of both
    (the undirected view used by WCC, Label Propagation and k-core).
    """
    if direction == "out":
        return expand_rows(g.out_indexes), g.out_edges
    if direction == "in":
        return expand_rows(g.in_indexes), g.in_edges
    if direction == "both":
        rows = np.concatenate(
            [expand_rows(g.out_indexes), expand_rows(g.in_indexes)])
        nbrs = np.concatenate([g.out_edges, g.in_edges])
        return rows, nbrs
    raise ValueError(f"direction must be 'out', 'in' or 'both', got {direction!r}")


def global_max_degree_vertex(
    comm: Communicator,
    g: DistGraph,
    restrict: np.ndarray | None = None,
) -> tuple[int, int]:
    """Global id and degree of the highest-total-degree vertex.

    ``restrict`` optionally masks local vertices (e.g. "still alive" in
    FW–BW trimming or k-core peeling).  Ties break to the lowest global id.
    Returns ``(-1, -1)`` if no vertex is eligible anywhere.
    """
    deg = g.total_degrees()
    if restrict is not None:
        deg = np.where(restrict[: g.n_loc], deg, -1)
    if len(deg):
        i = int(np.argmax(deg))
        local_best = (int(deg[i]), int(g.unmap[i]))
    else:
        local_best = (-1, g.n_global)  # worse than any real candidate
    # MAXLOC keeps the lowest "index" (here: global id) on value ties.
    best_deg, best_gid = comm.allreduce(local_best, MAXLOC)
    if best_deg < 0:
        return -1, -1
    return int(best_gid), int(best_deg)


def alive_degree(g: DistGraph, alive: np.ndarray) -> np.ndarray:
    """Total degree of each local vertex counting only alive neighbors.

    ``alive`` is a boolean array over local + ghost vertices; the result is
    meaningful for local vertices (ghost entries of ``alive`` must be
    current, i.e. halo-exchanged).
    """
    from ..graph.csr import segment_sum

    deg = np.zeros(g.n_loc, dtype=np.int64)
    for indptr, adj in ((g.out_indexes, g.out_edges), (g.in_indexes, g.in_edges)):
        if len(adj):
            deg += segment_sum(indptr, alive[adj].astype(np.int64))
    return deg


def global_sum(comm: Communicator, value) -> int:
    """Convenience allreduce(SUM) for scalar counters."""
    return comm.allreduce(value, SUM)
