"""Distributed PageRank by power iteration (paper §III-D1).

The prototypical "PageRank-like" analytic: every iteration each vertex's
rank mass flows along its out-edges; ghost values are refreshed with one
retained-queue halo exchange per iteration.  The computation per rank is
one segmented sum over the local in-edge CSR — the paper's inner loop over
adjacencies, vectorized.

Dangling vertices (zero out-degree, ubiquitous in web crawls) distribute
their mass uniformly, matching the standard formulation (and NetworkX, used
as the correctness oracle in tests).  The stopping criterion is either a
fixed iteration count (the paper reports fixed 10-iteration runs) or an
L1-error tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import segment_sum
from ..graph.distgraph import DistGraph
from ..runtime import SUM, Communicator
from .exchange import HaloExchange

__all__ = ["PageRankResult", "pagerank"]


@dataclass(frozen=True)
class PageRankResult:
    """Per-rank PageRank output."""

    scores: np.ndarray  # PageRank of each locally-owned vertex
    n_iters: int
    final_delta: float  # global L1 change of the last iteration


def pagerank(
    comm: Communicator,
    g: DistGraph,
    damping: float = 0.85,
    max_iters: int = 10,
    tol: float | None = None,
    halo: HaloExchange | None = None,
    personalization: np.ndarray | None = None,
    delta_tol: float | None = None,
) -> PageRankResult:
    """Compute PageRank of every vertex of the distributed graph.

    Parameters
    ----------
    damping:
        Teleport damping factor d; scores solve
        ``x = (1-d) t + d (P^T x + dangling · t)`` where ``t`` is the
        teleport distribution (uniform by default).
    max_iters:
        Iteration budget.
    tol:
        Optional global L1 convergence threshold; when given, iteration
        stops early once ``sum |x_new - x| < tol``.
    halo:
        Prebuilt exchange to reuse across analytics (built if omitted).
    personalization:
        Optional non-negative teleport weight per *locally-owned* vertex
        (length ``n_loc``); normalized globally.  Dangling mass follows the
        same distribution, matching NetworkX's personalized PageRank.
    delta_tol:
        Opt-in delta halo propagation: per-iteration ghost refreshes ship
        only scores that drifted more than ``delta_tol`` since last sent
        (:meth:`HaloExchange.exchange_delta`).  ``None`` (default) keeps
        the dense exchange, whose results are bitwise-identical to the
        pre-plan path; a small tolerance (e.g. ``tol/n``) trades bounded
        score error for traffic as the iteration converges.

    Returns
    -------
    PageRankResult
        Scores sum to 1 across all ranks (up to floating-point error).
    """
    if not (0.0 < damping < 1.0):
        raise ValueError("damping must be in (0, 1)")
    if max_iters < 0:
        raise ValueError("max_iters must be non-negative")
    with comm.region("pagerank"):
        if halo is None:
            halo = HaloExchange(comm, g)
        n_loc, n_tot, n = g.n_loc, g.n_total, g.n_global

        if personalization is None:
            teleport = np.full(n_loc, 1.0 / n, dtype=np.float64)
        else:
            personalization = np.asarray(personalization, dtype=np.float64)
            if personalization.shape != (n_loc,):
                raise ValueError(
                    f"personalization must have length n_loc={n_loc}")
            if len(personalization) and personalization.min() < 0:
                raise ValueError("personalization weights must be >= 0")
            total = comm.allreduce(float(personalization.sum()), SUM)
            if total <= 0:
                raise ValueError("personalization must have positive mass")
            teleport = personalization / total

        # Ghost out-degrees are needed to normalize contributions; fuse
        # their refresh with the initial score refresh (one collective).
        outdeg = np.zeros(n_tot, dtype=np.float64)
        outdeg[:n_loc] = g.out_degrees()
        x = np.full(n_tot, 1.0 / n, dtype=np.float64)
        x[:n_loc] = teleport  # start at the teleport distribution
        halo.exchange_many(outdeg, x)
        base = (1.0 - damping) * teleport
        dangling_local = outdeg[:n_loc] == 0

        n_iters = 0
        delta = float("inf")
        safe_outdeg = np.where(outdeg > 0, outdeg, 1.0)
        for _ in range(max_iters):
            contrib = x / safe_outdeg
            contrib[outdeg == 0] = 0.0
            sums = segment_sum(g.in_indexes, contrib[g.in_edges])
            dangling = comm.allreduce(float(x[:n_loc][dangling_local].sum()), SUM)
            x_new = base + damping * (sums + dangling * teleport)
            delta = comm.allreduce(float(np.abs(x_new - x[:n_loc]).sum()), SUM)
            x[:n_loc] = x_new
            if delta_tol is None:
                halo.exchange(x)
            else:
                halo.exchange_delta(x, tol=delta_tol)
            n_iters += 1
            if tol is not None and delta < tol:
                break

        return PageRankResult(scores=x[:n_loc].copy(), n_iters=n_iters,
                              final_delta=float(delta))
