"""Distributed level-synchronous BFS (paper Algorithm 2).

The BFS-like class of analytics (SCC, Harmonic Centrality, approximate
k-core, and phase 1 of Multistep WCC) expands a frontier of vertices level
by level.  Per the paper: a task-local queue holds the frontier; a
``Status`` array encodes unvisited (−2), queued (−1), or the visit level;
off-rank discoveries are shipped to their owners with one ``alltoallv`` per
level; and the loop terminates when an ``allreduce`` of frontier sizes hits
zero.

This implementation adds two generalizations the downstream analytics
need: multiple roots (multi-source BFS), a traversal direction selector
(out-edges, in-edges, or both for undirected connectivity), and an optional
``restrict`` mask limiting the traversal to an induced subgraph (used by
FW–BW and k-core).
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import sorted_unique
from ..graph.distgraph import DistGraph
from ..runtime import SUM, Communicator
from .common import NOT_VISITED, QUEUED

__all__ = ["distributed_bfs"]


def _frontier_neighbors(
    g: DistGraph, frontier: np.ndarray, direction: str
) -> np.ndarray:
    """Concatenated neighbor local-ids of all frontier vertices."""
    chunks = []
    if direction in ("out", "both"):
        indptr, adj = g.out_indexes, g.out_edges
        chunks.append(_gather_ranges(adj, indptr[frontier], indptr[frontier + 1]))
    if direction in ("in", "both"):
        indptr, adj = g.in_indexes, g.in_edges
        chunks.append(_gather_ranges(adj, indptr[frontier], indptr[frontier + 1]))
    if not chunks:
        raise ValueError(f"invalid direction {direction!r}")
    return np.concatenate(chunks) if len(chunks) > 1 else chunks[0]


def _gather_ranges(adj: np.ndarray, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenate ``adj[starts[i]:ends[i]]`` for all i, vectorized."""
    lens = ends - starts
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=adj.dtype)
    # Index trick: offsets within each range via a running counter.
    out_offsets = np.concatenate(([0], np.cumsum(lens)[:-1]))
    idx = np.arange(total, dtype=np.int64)
    idx += np.repeat(starts - out_offsets, lens)
    return adj[idx]


def distributed_bfs(
    comm: Communicator,
    g: DistGraph,
    roots_global,
    direction: str = "out",
    restrict: np.ndarray | None = None,
    max_levels: int | None = None,
) -> np.ndarray:
    """Level-synchronous BFS from one or more global root vertices.

    Parameters
    ----------
    roots_global:
        Scalar or array of global vertex ids to start from (level 0).
    direction:
        ``"out"`` follows out-edges (distances *from* the roots),
        ``"in"`` follows in-edges (distances *to* the roots along original
        edge directions), ``"both"`` treats edges as undirected.
    restrict:
        Optional boolean mask over local + ghost vertices; only ``True``
        vertices are traversed (roots must satisfy it where owned).
        Ghost entries must be current (halo-exchanged by the caller).
    max_levels:
        Stop after this many levels even if the frontier is non-empty.

    Returns
    -------
    status:
        Int64 array over **local** vertices: the BFS level (≥0) of every
        reached vertex, ``NOT_VISITED`` (−2) for unreached ones.
    """
    if direction not in ("out", "in", "both"):
        raise ValueError(f"direction must be 'out', 'in' or 'both', got {direction!r}")
    n_loc, n_tot = g.n_loc, g.n_total
    status = np.full(n_tot, NOT_VISITED, dtype=np.int64)

    roots = np.atleast_1d(np.asarray(roots_global, dtype=np.int64))
    if len(roots) and (roots.min() < 0 or roots.max() >= g.n_global):
        raise ValueError("root id out of range")
    my_roots = roots[g.partition.owner_of(roots) == comm.rank]
    frontier = g.partition.to_local(comm.rank, my_roots)
    if restrict is not None:
        frontier = frontier[restrict[frontier]]
    status[frontier] = QUEUED

    level = 0
    global_size = comm.allreduce(len(frontier), SUM)
    while global_size > 0:
        if max_levels is not None and level >= max_levels:
            break
        # Settle this level.
        status[frontier] = level

        nbrs = _frontier_neighbors(g, frontier, direction)
        mask = status[nbrs] == NOT_VISITED
        if restrict is not None:
            mask &= restrict[nbrs]
        discovered = sorted_unique(nbrs[mask])
        status[discovered] = QUEUED

        local_next = discovered[discovered < n_loc]
        ghosts = discovered[discovered >= n_loc]

        # Ship ghost discoveries to their owners as global ids.
        owners = g.ghost_tasks[ghosts - n_loc]
        order = np.argsort(owners, kind="stable")
        counts = np.bincount(owners, minlength=comm.size)
        recv_gids, _ = comm.alltoallv_flat(g.unmap[ghosts[order]], counts)

        if len(recv_gids):
            recv_lids = sorted_unique(g.map.get(recv_gids))
            keep = status[recv_lids] == NOT_VISITED
            if restrict is not None:
                keep &= restrict[recv_lids]
            recv_new = recv_lids[keep]
            status[recv_new] = QUEUED
            frontier = np.concatenate([local_next, recv_new])
        else:
            frontier = local_next

        level += 1
        global_size = comm.allreduce(len(frontier), SUM)

    return status[:n_loc]
