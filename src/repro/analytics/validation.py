"""Distributed self-validation of analytic outputs (Graph500-style).

The Graph500 benchmark the paper references requires every BFS run to be
*validated* against structural invariants rather than a reference
implementation (which would not scale).  This module provides the same
kind of distributed validators for this repository's analytics: each check
runs as an SPMD computation over the same distributed graph, so it works at
any scale — unlike the NetworkX oracles in the test suite, which exist only
for laptop-sized inputs.

All validators return a list of human-readable violation strings (empty =
valid) and never modify their inputs.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import expand_rows, segment_sum
from ..graph.distgraph import DistGraph
from ..runtime import SUM, Communicator
from .common import NOT_VISITED
from .exchange import HaloExchange

__all__ = [
    "validate_bfs_levels",
    "validate_components",
    "validate_pagerank",
    "validate_distances",
]


def _gather_violations(comm: Communicator, local: list[str]) -> list[str]:
    """Combine per-rank violation lists (identical result on every rank)."""
    all_lists = comm.allgather(local)
    out: list[str] = []
    for r, lst in enumerate(all_lists):
        out.extend(f"rank {r}: {v}" for v in lst)
    return out


def validate_bfs_levels(
    comm: Communicator,
    g: DistGraph,
    levels_local: np.ndarray,
    roots_global,
    direction: str = "out",
    halo: HaloExchange | None = None,
) -> list[str]:
    """Graph500-style BFS validation.

    Checks: roots at level 0; every reached non-root vertex has an in-tree
    predecessor exactly one level below; no edge skips a level (for the
    traversal direction); unreached vertices have no reached predecessor.
    """
    if halo is None:
        halo = HaloExchange(comm, g)
    n_loc = g.n_loc
    levels = np.full(g.n_total, NOT_VISITED, dtype=np.int64)
    levels[:n_loc] = levels_local
    halo.exchange(levels)

    bad: list[str] = []
    roots = np.atleast_1d(np.asarray(roots_global, dtype=np.int64))
    my_roots = roots[g.partition.owner_of(roots) == comm.rank]
    lids = g.partition.to_local(comm.rank, my_roots)
    for r, lid in zip(my_roots, lids):
        if levels[lid] != 0:
            bad.append(f"root {int(r)} has level {int(levels[lid])}, not 0")

    # Predecessor structure: for direction "out", v's predecessors are its
    # in-neighbors; for "in", its out-neighbors; "both" uses both.
    if direction == "out":
        pred_sets = [(g.in_indexes, g.in_edges)]
    elif direction == "in":
        pred_sets = [(g.out_indexes, g.out_edges)]
    elif direction == "both":
        pred_sets = [(g.in_indexes, g.in_edges), (g.out_indexes, g.out_edges)]
    else:
        raise ValueError(f"invalid direction {direction!r}")

    min_pred = np.full(n_loc, np.inf, dtype=np.float64)
    for indptr, adj in pred_sets:
        if not len(adj):
            continue
        plev = levels[adj].astype(np.float64)
        plev[plev < 0] = np.inf
        rows = expand_rows(indptr)
        # Per-vertex min predecessor level.
        order = np.argsort(rows, kind="stable")
        rs, vs = rows[order], plev[order]
        starts = np.flatnonzero(np.concatenate(([True], rs[1:] != rs[:-1])))
        mins = np.minimum.reduceat(vs, starts)
        np.minimum.at(min_pred, rs[starts], mins)

    is_root = np.zeros(n_loc, dtype=bool)
    is_root[lids] = True
    reached = levels[:n_loc] >= 0

    # Reached non-roots need a predecessor exactly one level below.
    need = reached & ~is_root
    wrong_parent = need & (min_pred != levels[:n_loc] - 1)
    for v in np.flatnonzero(wrong_parent)[:5]:
        bad.append(
            f"vertex {int(g.unmap[v])} at level {int(levels[v])} has min "
            f"predecessor level {min_pred[v]}")
    # Unreached vertices must not have a reached predecessor.
    ghost_reach = (~reached) & np.isfinite(min_pred)
    for v in np.flatnonzero(ghost_reach)[:5]:
        bad.append(
            f"vertex {int(g.unmap[v])} unreached but predecessor at level "
            f"{min_pred[v]}")

    return _gather_violations(comm, bad)


def validate_components(
    comm: Communicator,
    g: DistGraph,
    labels_local: np.ndarray,
    directed: bool = False,
    halo: HaloExchange | None = None,
) -> list[str]:
    """Component labels must be constant across (weak) edges.

    With ``directed=False`` every edge's endpoints must share a label
    (WCC); this is a necessary condition only (it does not detect
    over-merged labels), which is exactly what is checkable in linear work.
    """
    if halo is None:
        halo = HaloExchange(comm, g)
    labels = np.empty(g.n_total, dtype=np.int64)
    labels[: g.n_loc] = labels_local
    halo.exchange(labels)

    bad: list[str] = []
    rows = expand_rows(g.out_indexes)
    mismatch = labels[rows] != labels[g.out_edges]
    if not directed and mismatch.any():
        i = int(np.flatnonzero(mismatch)[0])
        bad.append(
            f"edge ({int(g.unmap[rows[i]])} -> "
            f"{int(g.unmap[g.out_edges[i]])}) crosses labels "
            f"{int(labels[rows[i]])} / {int(labels[g.out_edges[i]])}")
    return _gather_violations(comm, bad)


def validate_pagerank(
    comm: Communicator,
    g: DistGraph,
    scores_local: np.ndarray,
    damping: float = 0.85,
    tol: float = 1e-6,
    halo: HaloExchange | None = None,
) -> list[str]:
    """PageRank sanity: positive scores, unit mass, small fixed-point
    residual of the PageRank equation."""
    if halo is None:
        halo = HaloExchange(comm, g)
    n_loc, n = g.n_loc, g.n_global
    bad: list[str] = []
    if len(scores_local) and scores_local.min() <= 0:
        bad.append("non-positive scores present")
    total = comm.allreduce(float(np.sum(scores_local)), SUM)
    if abs(total - 1.0) > 1e-6:
        bad.append(f"scores sum to {total}, not 1")

    x = np.empty(g.n_total, dtype=np.float64)
    x[:n_loc] = scores_local
    halo.exchange(x)
    outdeg = np.zeros(g.n_total, dtype=np.float64)
    outdeg[:n_loc] = g.out_degrees()
    halo.exchange(outdeg)
    contrib = np.where(outdeg > 0, x / np.maximum(outdeg, 1.0), 0.0)
    sums = segment_sum(g.in_indexes, contrib[g.in_edges])
    dangling = comm.allreduce(
        float(x[:n_loc][outdeg[:n_loc] == 0].sum()), SUM)
    expect = (1 - damping) / n + damping * (sums + dangling / n)
    residual = comm.allreduce(float(np.abs(expect - x[:n_loc]).sum()), SUM)
    if residual > tol:
        bad.append(f"fixed-point residual {residual} exceeds {tol}")
    return _gather_violations(comm, bad)


def validate_distances(
    comm: Communicator,
    g: DistGraph,
    dist_local: np.ndarray,
    root_global: int,
    weights: np.ndarray | None = None,
    halo: HaloExchange | None = None,
) -> list[str]:
    """SSSP validation: root at 0, no relaxable edge remains (triangle
    inequality holds), unreachable vertices have no finite predecessor."""
    from .sssp import default_weights

    if halo is None:
        halo = HaloExchange(comm, g)
    if weights is None:
        weights = (g.in_values if g.in_values is not None
                   else default_weights(g))
    n_loc = g.n_loc
    dist = np.full(g.n_total, np.inf, dtype=np.float64)
    dist[:n_loc] = dist_local
    halo.exchange(dist)

    bad: list[str] = []
    if g.partition.owner_of(np.array([root_global]))[0] == comm.rank:
        lid = int(g.partition.to_local(comm.rank, np.array([root_global]))[0])
        if dist[lid] != 0.0:
            bad.append(f"root distance is {dist[lid]}, not 0")

    rows = expand_rows(g.in_indexes)
    with np.errstate(invalid="ignore"):  # inf - inf across unreachable pairs
        slack = dist[rows] - (dist[g.in_edges] + weights)
    relaxable = slack > 1e-9  # NaN (both endpoints unreachable) is fine
    if relaxable.any():
        i = int(np.flatnonzero(relaxable)[0])
        bad.append(
            f"edge into {int(g.unmap[rows[i]])} still relaxable by "
            f"{slack[i]:.3g}")
    return _gather_violations(comm, bad)
