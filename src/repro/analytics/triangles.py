"""Distributed triangle counting and clustering coefficients (§VII).

Another member for the paper's "extend this collection" direction, and a
structurally different one: triangle counting needs *two-hop* information,
so unlike the six original analytics it cannot run on halo values alone.

The algorithm is the standard degree-ordered wedge check, distributed:

1. Orient every edge from its lower-rank endpoint to its higher-rank
   endpoint under the total order (degree, gid) — each triangle becomes
   exactly one wedge (u→v, u→w) with a closing edge v→w, and forward
   degrees are bounded by O(√m) on skewed graphs.
2. Each rank enumerates the wedges of its owned vertices; closing-edge
   existence queries (v, w) are grouped by the *owner of v* and answered
   with one ``alltoallv`` round against the remote forward-edge hash sets.

One subtlety: wedge endpoints v, w may both be ghosts, so their forward
orientation uses the (degree, gid) key, which requires ghost degrees — one
halo exchange supplies them.

Degenerate inputs (self-loops, parallel edges) are removed up front, so
counts match the simple-graph definition used by NetworkX.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import expand_rows, sorted_unique
from ..graph.distgraph import DistGraph
from ..graph.hashmap import IntHashMap
from ..runtime import SUM, Communicator
from .exchange import HaloExchange

__all__ = ["TriangleResult", "triangle_count"]


@dataclass(frozen=True)
class TriangleResult:
    """Per-rank triangle-count output."""

    local_triangles: np.ndarray  # per local vertex (each triangle counted at all 3)
    total: int  # global triangle count (each counted once)
    wedges_checked: int  # global number of closing-edge queries
    global_clustering: float  # 3*triangles / open+closed wedges


def _forward_key(deg: np.ndarray, gid: np.ndarray) -> np.ndarray:
    """Total-order key: degree-major, gid-minor (packed into int64)."""
    return (deg.astype(np.int64) << np.int64(40)) | gid.astype(np.int64)


def triangle_count(
    comm: Communicator,
    g: DistGraph,
    halo: HaloExchange | None = None,
) -> TriangleResult:
    """Count triangles of the undirected simple graph underlying ``g``."""
    with comm.region("triangles"):
        if halo is None:
            halo = HaloExchange(comm, g)
        n_loc, n_tot = g.n_loc, g.n_total

        # Undirected simple neighbor lists of local vertices (local ids),
        # with self-loops and duplicates removed.
        rows = np.concatenate([expand_rows(g.out_indexes),
                               expand_rows(g.in_indexes)])
        nbrs = np.concatenate([g.out_edges, g.in_edges])
        keep = rows != nbrs  # drop self-loops (covers ghost case: ghosts != local rows)
        packed = sorted_unique(rows[keep] * np.int64(n_tot) + nbrs[keep])
        rows_u, nbrs_u = packed // n_tot, packed % n_tot

        # Undirected simple degree per local vertex; ghosts via halo.
        deg = np.zeros(n_tot, dtype=np.int64)
        deg[:n_loc] = np.bincount(rows_u, minlength=n_loc)
        halo.exchange(deg)

        key = _forward_key(deg, g.unmap.astype(np.int64))
        forward = key[rows_u] < key[nbrs_u]
        f_rows, f_nbrs = rows_u[forward], nbrs_u[forward]

        # Local forward-edge membership set keyed by (gid_u, gid_v).
        # Packed as gid_u * n_global + gid_v (fits int64 for n < ~3e9... the
        # stand-ins are far smaller; guard anyway).
        if g.n_global and g.n_global > np.iinfo(np.int64).max // max(g.n_global, 1):
            raise ValueError("graph too large for packed edge keys")

        def pack(a_gid, b_gid):
            return a_gid * np.int64(g.n_global) + b_gid

        f_keys = pack(g.unmap[f_rows], g.unmap[f_nbrs])
        edge_set = IntHashMap(capacity_hint=max(16, len(f_keys)))
        edge_set.insert(f_keys, np.ones(len(f_keys), dtype=np.int64))

        # Wedge enumeration: for each owned u, all ordered pairs (v, w) of
        # forward neighbors with key(v) < key(w).  Vectorized per-row pair
        # expansion via sorted grouping.
        order = np.lexsort((key[f_nbrs], f_rows))
        fr = f_rows[order]
        fn = f_nbrs[order]
        f_counts = np.bincount(fr, minlength=n_loc)
        f_starts = np.zeros(n_loc + 1, dtype=np.int64)
        np.cumsum(f_counts, out=f_starts[1:])

        # For every row with d forward neighbors, emit d*(d-1)/2 pairs.
        d = f_counts
        n_pairs_per_row = d * (d - 1) // 2
        total_pairs = int(n_pairs_per_row.sum())
        tri_per_vertex = np.zeros(n_loc, dtype=np.int64)
        v_q = np.empty(total_pairs, dtype=np.int64)
        w_q = np.empty(total_pairs, dtype=np.int64)
        u_q = np.empty(total_pairs, dtype=np.int64)
        pos = 0
        # Row-block pair expansion: loop over distinct forward-degree
        # values (tiny count) and vectorize within each.
        for dv in np.unique(d):
            if dv < 2:
                continue
            rows_dv = np.flatnonzero(d == dv)
            base = f_starts[rows_dv]  # (R,)
            iu, ju = np.triu_indices(int(dv), k=1)
            # (R, P) index matrices into fn.
            vi = (base[:, None] + iu[None, :]).ravel()
            wi = (base[:, None] + ju[None, :]).ravel()
            cnt = len(rows_dv) * len(iu)
            v_q[pos : pos + cnt] = fn[vi]
            w_q[pos : pos + cnt] = fn[wi]
            u_q[pos : pos + cnt] = np.repeat(rows_dv, len(iu))
            pos += cnt
        assert pos == total_pairs

        # Wedge (u, v, w) closes iff forward edge (v, w) exists; v's owner
        # holds that fact.  Since fn is sorted by key within a row,
        # key(v) < key(w) already holds.
        v_gid = g.unmap[v_q]
        w_gid = g.unmap[w_q]
        owners = g.owner_of_local(v_q)
        order_q = np.argsort(owners, kind="stable")
        counts_q = np.bincount(owners, minlength=comm.size)
        recv_keys, recv_counts = comm.alltoallv_flat(
            pack(v_gid, w_gid)[order_q], counts_q)

        found = (edge_set.get(recv_keys, default=0) > 0).astype(np.int64)
        answers, _ = comm.alltoallv_flat(found, recv_counts)
        closed = np.zeros(total_pairs, dtype=np.int64)
        closed[order_q] = answers

        # Attribute triangles: each closed wedge (u,v,w) is one triangle;
        # credit all three corners (v/w may be remote: credit via exchange).
        np.add.at(tri_per_vertex, u_q[closed > 0], 1)
        # v and w credits, grouped by owner of the *global* vertex.
        for corner_gid in (v_gid[closed > 0], w_gid[closed > 0]):
            owners_c = g.partition.owner_of(corner_gid)
            order_c = np.argsort(owners_c, kind="stable")
            counts_c = np.bincount(owners_c, minlength=comm.size)
            got, _ = comm.alltoallv_flat(corner_gid[order_c], counts_c)
            if len(got):
                lids = g.map.get(got)
                np.add.at(tri_per_vertex, lids, 1)

        total = comm.allreduce(int(closed.sum()), SUM)
        wedges = comm.allreduce(total_pairs, SUM)
        # Global clustering coefficient: 3*triangles / wedges over the
        # *undirected* graph (wedges centered anywhere, open or closed).
        d_all = deg[:n_loc]
        all_wedges = comm.allreduce(int((d_all * (d_all - 1) // 2).sum()), SUM)
        gcc = (3.0 * total / all_wedges) if all_wedges else 0.0

        return TriangleResult(
            local_triangles=tri_per_vertex,
            total=total,
            wedges_checked=wedges,
            global_clustering=gcc,
        )
