"""Distributed weakly connected components via Multistep (paper §III-D).

The paper parallelizes the Multistep algorithm (Slota et al., IPDPS 2014)
in distributed memory; it "has stages belonging to both classes":

1. **BFS phase** (BFS-like): one undirected BFS from the highest-degree
   vertex captures the giant component that dominates web-scale graphs.
2. **Coloring phase** (PageRank-like): the remaining vertices repeatedly
   adopt the minimum label among themselves and their neighbors until a
   fixed point — a handful of iterations for the small leftover
   components.

Labels are canonical: every vertex ends with the *minimum global vertex
id* of its weak component, so results are partition- and rank-count-
independent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.distgraph import DistGraph, GridGraph
from ..runtime import MIN, SUM, Communicator
from .bfs import distributed_bfs
from .common import combined_adjacency, global_max_degree_vertex
from .exchange import HaloExchange

__all__ = ["WCCResult", "wcc"]


@dataclass(frozen=True)
class WCCResult:
    """Per-rank weak-connectivity output."""

    labels: np.ndarray  # min-gid component label per local vertex
    n_color_iters: int  # iterations of the coloring phase
    giant_label: int  # label of the BFS-captured component (-1 if empty graph)


def _min_neighbor_labels(
    g: DistGraph,
    rows: np.ndarray,
    nbrs: np.ndarray,
    labels: np.ndarray,
    active: np.ndarray,
) -> np.ndarray:
    """Per-local-vertex min of neighbor labels, restricted to active rows."""
    n_loc = g.n_loc
    out = labels[:n_loc].copy()
    if len(rows) == 0:
        return out
    keep = active[rows]
    r = rows[keep]
    vals = labels[nbrs[keep]]
    if len(r) == 0:
        return out
    order = np.argsort(r, kind="stable")
    r_sorted = r[order]
    v_sorted = vals[order]
    starts = np.flatnonzero(np.concatenate(([True], r_sorted[1:] != r_sorted[:-1])))
    mins = np.minimum.reduceat(v_sorted, starts)
    np.minimum.at(out, r_sorted[starts], mins)
    return out


def wcc(
    comm: Communicator,
    g: DistGraph | GridGraph,
    halo: HaloExchange | None = None,
    max_color_iters: int = 10_000,
) -> WCCResult:
    """Label every vertex with the minimum global id of its weak component."""
    if isinstance(g, GridGraph):
        from .frontier2d import grid_wcc

        return grid_wcc(comm, g, max_color_iters=max_color_iters)
    with comm.region("wcc"):
        if halo is None:
            halo = HaloExchange(comm, g)
        n_loc, n_tot = g.n_loc, g.n_total

        # --- Phase 1: BFS from the max-degree vertex (giant component). ---
        pivot, pivot_deg = global_max_degree_vertex(comm, g)
        labels = g.unmap.astype(np.int64).copy()
        giant_label = -1
        visited = np.zeros(n_tot, dtype=bool)
        if pivot >= 0 and pivot_deg > 0:
            lev = distributed_bfs(comm, g, pivot, direction="both")
            visited_local = lev >= 0
            # Canonical label: global minimum id inside the BFS component.
            local_min = (
                int(g.unmap[:n_loc][visited_local].min())
                if visited_local.any()
                else g.n_global
            )
            giant_label = int(comm.allreduce(local_min, MIN))
            labels[:n_loc][visited_local] = giant_label
            visited[:n_loc] = visited_local
            halo.exchange_many(visited, labels)

        # --- Phase 2: min-label coloring of the leftover vertices. ---
        rows, nbrs = combined_adjacency(g, "both")
        active = ~visited[:n_loc]
        n_iters = 0
        while n_iters < max_color_iters:
            new_local = _min_neighbor_labels(g, rows, nbrs, labels, active)
            changed = comm.allreduce(
                int(np.count_nonzero(new_local != labels[:n_loc])), SUM)
            if changed == 0:
                break
            labels[:n_loc] = new_local
            # tol=0 delta: late coloring rounds touch few labels, so most
            # iterations ship a sparse (index, label) trickle.
            halo.exchange_delta(labels)
            n_iters += 1

        return WCCResult(labels=labels[:n_loc].copy(), n_color_iters=n_iters,
                         giant_label=giant_label)
