"""Distributed single-source shortest paths (collection extension, §VII).

The paper's third follow-on direction is "to extend this collection of
analytics with other implementations".  SSSP is the natural next member of
the BFS-like class: the same bulk-synchronous structure, but per-vertex
*distances* relax along weighted edges until a fixed point (distributed
Bellman–Ford, the standard choice when edge weights are arbitrary and the
diameter is small — exactly the web-graph regime).

Edge weights are supplied per local in-edge, or derived deterministically
from the endpoint ids (so every rank count sees identical weights without
shipping a weight array).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import expand_rows
from ..graph.distgraph import DistGraph
from ..runtime import SUM, Communicator
from .exchange import HaloExchange

__all__ = ["SSSPResult", "sssp", "default_weights", "hash_edge_weights"]

INF = np.inf


def hash_edge_weights(src_g: np.ndarray, dst_g: np.ndarray) -> np.ndarray:
    """Deterministic pseudo-random weights in [1, 10) per (u, v) edge.

    Hashed purely from the *global* endpoint ids, so the weight of edge
    (u, v) is identical under any partitioning (1-D or 2-D) or rank count.
    """
    src_g = np.asarray(src_g).astype(np.uint64)
    dst_g = np.asarray(dst_g).astype(np.uint64)
    with np.errstate(over="ignore"):
        h = src_g * np.uint64(0x9E3779B97F4A7C15) ^ \
            dst_g * np.uint64(0xBF58476D1CE4E5B9)
        h = (h ^ (h >> np.uint64(33))) * np.uint64(0xD6E8FEB86659FD93)
        h ^= h >> np.uint64(32)
    return 1.0 + 9.0 * (h.astype(np.float64) / float(2**64))


def default_weights(g: DistGraph) -> np.ndarray:
    """:func:`hash_edge_weights` applied to every local in-edge."""
    rows = expand_rows(g.in_indexes)
    return hash_edge_weights(g.unmap[g.in_edges], g.unmap[rows])


@dataclass(frozen=True)
class SSSPResult:
    """Per-rank shortest-path output."""

    distances: np.ndarray  # per local vertex; inf = unreachable
    n_iters: int
    reached: int  # global count of vertices with finite distance


def sssp(
    comm: Communicator,
    g: DistGraph,
    root_global: int,
    weights: np.ndarray | None = None,
    halo: HaloExchange | None = None,
    max_iters: int = 10_000,
) -> SSSPResult:
    """Shortest distances from ``root_global`` along out-edges.

    Parameters
    ----------
    weights:
        Non-negative weight per local **in-edge** (aligned with
        ``g.in_edges``).  Defaults to the graph's own edge values when it
        was built weighted (``g.in_values``), else to
        :func:`default_weights`.
    max_iters:
        Safety bound on relaxation rounds (n-1 suffices in theory).

    Notes
    -----
    Per round, every local vertex takes the min over
    ``dist[u] + w(u, v)`` of its in-neighbors (one segmented reduction),
    then ghost distances refresh with one halo exchange; the loop stops
    when a global round changes nothing.
    """
    if not (0 <= root_global < g.n_global):
        raise ValueError("root out of range")
    with comm.region("sssp"):
        if halo is None:
            halo = HaloExchange(comm, g)
        if weights is None:
            weights = (g.in_values if g.in_values is not None
                       else default_weights(g))
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != g.in_edges.shape:
            raise ValueError("weights must align with g.in_edges")
        if len(weights) and weights.min() < 0:
            raise ValueError("weights must be non-negative")

        n_loc, n_tot = g.n_loc, g.n_total
        dist = np.full(n_tot, INF, dtype=np.float64)
        if g.partition.owner_of(np.array([root_global]))[0] == comm.rank:
            lid = int(g.partition.to_local(
                comm.rank, np.array([root_global]))[0])
            dist[lid] = 0.0
        halo.exchange(dist)

        rows = expand_rows(g.in_indexes)
        n_iters = 0
        for _ in range(max_iters):
            cand = dist[g.in_edges] + weights
            new = dist[:n_loc].copy()
            if len(cand):
                np.minimum.at(new, rows, cand)
            changed = comm.allreduce(
                int(np.count_nonzero(new < dist[:n_loc])), SUM)
            n_iters += 1
            if changed == 0:
                break
            dist[:n_loc] = new
            halo.exchange(dist)

        reached = comm.allreduce(
            int(np.count_nonzero(np.isfinite(dist[:n_loc]))), SUM)
        return SSSPResult(distances=dist[:n_loc].copy(), n_iters=n_iters,
                          reached=reached)
