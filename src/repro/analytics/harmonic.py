"""Distributed Harmonic Centrality (paper §III-D, Boldi & Vigna axioms).

Harmonic centrality of a vertex v is ``Σ_{u≠v} 1/d(u, v)`` with ``1/∞ = 0``
— the reciprocal-distance sum over vertices that can *reach* v.  One
vertex's score costs one BFS over in-edges (distances to v follow reversed
edges), so scoring all vertices is infeasible at scale; the paper computes
the top-1000 vertices by degree and reports single-vertex times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.distgraph import DistGraph
from ..runtime import MAX, SUM, Communicator
from .bfs import distributed_bfs

__all__ = ["HarmonicResult", "harmonic_centrality", "top_degree_vertices",
           "harmonic_centrality_many"]


@dataclass(frozen=True)
class HarmonicResult:
    """Score of one vertex plus traversal statistics."""

    vertex: int
    score: float
    n_reaching: int  # vertices with a finite distance to the target
    eccentricity: int  # max finite distance observed


def harmonic_centrality(
    comm: Communicator, g: DistGraph, v_global: int
) -> HarmonicResult:
    """Harmonic centrality of one global vertex (one reverse BFS)."""
    if not (0 <= v_global < g.n_global):
        raise ValueError(f"vertex {v_global} out of range")
    with comm.region("harmonic"):
        # BFS along in-edges: level(u) = d(u -> v) in the original graph.
        lev = distributed_bfs(comm, g, v_global, direction="in")
        reached = lev > 0  # exclude v itself (level 0)
        local_score = float((1.0 / lev[reached]).sum()) if reached.any() else 0.0
        local_n = int(reached.sum())
        local_ecc = int(lev.max()) if len(lev) else 0
        score = comm.allreduce(local_score, SUM)
        n_reaching = comm.allreduce(local_n, SUM)
        ecc = int(comm.allreduce(local_ecc, MAX))
        return HarmonicResult(vertex=int(v_global), score=score,
                              n_reaching=n_reaching, eccentricity=ecc)


def top_degree_vertices(comm: Communicator, g: DistGraph, k: int) -> np.ndarray:
    """Global ids of the ``k`` highest-total-degree vertices.

    Ties break toward lower vertex id.  Each rank contributes its local
    top-k candidates; the winners are selected identically on every rank.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    deg = g.total_degrees()
    kk = min(k, len(deg))
    if kk:
        idx = np.argpartition(-deg, kk - 1)[:kk]
        cand = np.stack([-deg[idx], g.unmap[idx]], axis=1)  # sortable keys
    else:
        cand = np.empty((0, 2), dtype=np.int64)
    all_cand, _ = comm.allgatherv(cand.reshape(-1).astype(np.int64))
    pairs = all_cand.reshape(-1, 2)
    order = np.lexsort((pairs[:, 1], pairs[:, 0]))  # by degree desc, id asc
    top = pairs[order[:k], 1]
    return top.astype(np.int64)


def harmonic_centrality_many(
    comm: Communicator, g: DistGraph, vertices: np.ndarray
) -> list[HarmonicResult]:
    """Score several vertices (one BFS each), e.g. the top-k by degree."""
    return [harmonic_centrality(comm, g, int(v)) for v in np.atleast_1d(vertices)]
