"""Exact distributed k-core decomposition (refinement of §III-D's bounds).

The paper notes that its approximate coreness "upper bounds can be refined,
if required, to compute exact coreness values for each vertex" — this
module is that refinement: a distributed peeling sweep with unit threshold
increments instead of the geometric 2^i schedule.  A vertex's coreness is
``k−1`` where ``k`` is the first threshold whose peel removes it.

Degrees count both edge directions with multiplicity (the undirected
multigraph view the whole analytic family uses); on simple graphs without
reciprocal duplicates this equals the textbook undirected coreness (the
test suite checks against NetworkX ``core_number``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.distgraph import DistGraph
from ..runtime import MAX, SUM, Communicator
from .common import alive_degree
from .exchange import HaloExchange

__all__ = ["ExactKCoreResult", "exact_kcore"]


@dataclass(frozen=True)
class ExactKCoreResult:
    """Per-rank exact coreness output."""

    coreness: np.ndarray  # per local vertex
    max_core: int  # global degeneracy
    n_rounds: int  # total peel rounds across all thresholds


def exact_kcore(
    comm: Communicator,
    g: DistGraph,
    halo: HaloExchange | None = None,
) -> ExactKCoreResult:
    """Exact coreness of every vertex by incremental-threshold peeling."""
    with comm.region("kcore_exact"):
        if halo is None:
            halo = HaloExchange(comm, g)
        n_loc, n_tot = g.n_loc, g.n_total

        alive = np.ones(n_tot, dtype=bool)
        coreness = np.zeros(n_loc, dtype=np.int64)
        n_rounds = 0

        k = 1
        remaining = comm.allreduce(n_loc, SUM)
        while remaining > 0:
            # Peel at threshold k to a fixed point.
            while True:
                deg = alive_degree(g, alive)
                kill = alive[:n_loc] & (deg < k)
                n_kill = comm.allreduce(int(kill.sum()), SUM)
                n_rounds += 1
                if n_kill == 0:
                    break
                coreness[kill] = k - 1
                alive[:n_loc][kill] = False
                halo.exchange(alive)
            remaining = comm.allreduce(int(alive[:n_loc].sum()), SUM)
            k += 1

        local_max = int(coreness.max()) if n_loc else 0
        max_core = int(comm.allreduce(local_max, MAX))
        return ExactKCoreResult(coreness=coreness, max_core=max_core,
                                n_rounds=n_rounds)
